#pragma once
// Distributed sparse linear algebra on the virtual-rank runtime.
//
// This is the parallel half of the "PETSc KSP" substitute: each virtual rank
// owns a contiguous set of matrix rows (grid nodes), holds halo copies of
// the off-rank columns its rows touch, and the preconditioned CG recurrence
// runs with one halo exchange and two allreduce rounds per iteration — the
// communication-to-computation ratio that makes Poisson_Solve the paper's
// scalability bottleneck (Table IV) emerges from exactly these messages.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "linalg/csr.hpp"
#include "linalg/krylov.hpp"
#include "par/runtime.hpp"

namespace dsmcpic::linalg {

/// Row-ownership layout plus the halo-exchange communication plans.
struct DistLayout {
  int nranks = 1;
  std::vector<std::int32_t> owner;  // global row -> owning rank

  std::vector<std::vector<std::int32_t>> owned;  // per rank, sorted global ids
  std::vector<std::vector<std::int32_t>> halo;   // per rank, sorted global ids

  struct Plan {
    int peer = -1;
    std::vector<std::int32_t> idx;  // local indices (see send/recv semantics)
  };
  // send_plan[r]: for each peer, indices into owned[r] whose values the peer
  // needs; ordered to match the peer's recv_plan entry for r.
  std::vector<std::vector<Plan>> send_plan;
  // recv_plan[r]: for each peer, indices into halo[r] filled by that peer.
  std::vector<std::vector<Plan>> recv_plan;

  /// Derives the layout from a row->rank map and the sparsity pattern of the
  /// (square) matrix: rank r's halo is every column referenced by its rows
  /// but owned elsewhere.
  static DistLayout build(int nranks, std::span<const std::int32_t> row_owner,
                          const CsrMatrix& pattern);

  std::int32_t num_global() const {
    return static_cast<std::int32_t>(owner.size());
  }
  std::int32_t local_size(int r) const {
    return static_cast<std::int32_t>(owned[r].size() + halo[r].size());
  }
  /// Local index of global row g on rank r (owned first, halo after);
  /// -1 when not present.
  std::int32_t local_index(int r, std::int32_t g) const;
};

/// The distributed matrix: per-rank CSR blocks with columns renumbered into
/// local (owned-then-halo) indices.
struct DistMatrix {
  DistLayout layout;
  std::vector<CsrMatrix> local;  // per rank: rows = #owned, cols = local_size

  static DistMatrix build(const CsrMatrix& a, DistLayout layout);
};

/// Per-rank owned-row vectors (b, x).
using DistVector = std::vector<std::vector<double>>;

/// Scatters a global vector into per-rank owned segments / gathers it back.
DistVector scatter_vector(const DistLayout& layout, std::span<const double> v);
std::vector<double> gather_vector(const DistLayout& layout, const DistVector& v);

/// Preconditioned CG across virtual ranks. `x` is the warm-start guess on
/// input and the solution on output. All communication costs are charged
/// under `phase` on `rt`.
SolveResult dist_cg(par::Runtime& rt, const std::string& phase,
                    const DistMatrix& a, const DistVector& b, DistVector& x,
                    const SolveOptions& opt = {});

/// Distributed BiCGStab for general (nonsymmetric) systems — two halo'd
/// matvecs and two allreduce rounds per iteration. Same layout/cost model
/// as dist_cg.
SolveResult dist_bicgstab(par::Runtime& rt, const std::string& phase,
                          const DistMatrix& a, const DistVector& b,
                          DistVector& x, const SolveOptions& opt = {});

/// One halo exchange: ships owned values listed in send plans, fills halo
/// slots. `local` holds per-rank vectors of local_size (owned then halo);
/// the owned prefix must be filled on entry, the halo suffix is filled on
/// return. Exposed for reuse by the PIC field gather.
void halo_exchange(par::Runtime& rt, const std::string& phase,
                   const DistLayout& layout,
                   std::vector<std::vector<double>>& local);

}  // namespace dsmcpic::linalg
