#include "linalg/krylov.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/error.hpp"

namespace dsmcpic::linalg {

namespace {

double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(std::span<const double> a) { return std::sqrt(dot(a, a)); }

/// Inverse-diagonal entries for Jacobi preconditioning (1 where diag == 0).
std::vector<double> inv_diag(const CsrMatrix& a) {
  std::vector<double> d = a.diagonal();
  for (double& v : d) v = (v != 0.0) ? 1.0 / v : 1.0;
  return d;
}

}  // namespace

SolveResult cg(const CsrMatrix& a, std::span<const double> b,
               std::span<double> x, const SolveOptions& opt) {
  const std::int32_t n = a.rows();
  DSMCPIC_CHECK(a.cols() == n);
  DSMCPIC_CHECK(static_cast<std::int32_t>(b.size()) == n);
  DSMCPIC_CHECK(static_cast<std::int32_t>(x.size()) == n);

  const std::vector<double> minv =
      opt.jacobi_precondition ? inv_diag(a) : std::vector<double>(n, 1.0);

  std::vector<double> r(n), z(n), p(n), q(n);
  a.matvec(x, r);
  for (std::int32_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  const double bnorm = std::max(norm(b), 1e-300);

  for (std::int32_t i = 0; i < n; ++i) z[i] = minv[i] * r[i];
  p = z;
  double rz = dot(r, z);

  SolveResult res;
  res.residual = norm(r) / bnorm;
  if (res.residual <= opt.rel_tol) {
    res.converged = true;
    return res;
  }

  for (int it = 0; it < opt.max_iterations; ++it) {
    a.matvec(p, q);
    const double pq = dot(p, q);
    if (pq == 0.0) break;  // breakdown (singular or zero search direction)
    const double alpha = rz / pq;
    for (std::int32_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * q[i];
    }
    res.iterations = it + 1;
    res.residual = norm(r) / bnorm;
    if (res.residual <= opt.rel_tol) {
      res.converged = true;
      return res;
    }
    for (std::int32_t i = 0; i < n; ++i) z[i] = minv[i] * r[i];
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::int32_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return res;
}

SolveResult bicgstab(const CsrMatrix& a, std::span<const double> b,
                     std::span<double> x, const SolveOptions& opt) {
  const std::int32_t n = a.rows();
  DSMCPIC_CHECK(a.cols() == n);
  DSMCPIC_CHECK(static_cast<std::int32_t>(b.size()) == n);
  DSMCPIC_CHECK(static_cast<std::int32_t>(x.size()) == n);

  const std::vector<double> minv =
      opt.jacobi_precondition ? inv_diag(a) : std::vector<double>(n, 1.0);

  std::vector<double> r(n), r0(n), p(n, 0.0), v(n, 0.0), s(n), t(n), ph(n), sh(n);
  a.matvec(x, r);
  for (std::int32_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  r0 = r;
  const double bnorm = std::max(norm(b), 1e-300);

  double rho = 1.0, alpha = 1.0, omega = 1.0;
  SolveResult res;
  res.residual = norm(r) / bnorm;
  if (res.residual <= opt.rel_tol) {
    res.converged = true;
    return res;
  }

  for (int it = 0; it < opt.max_iterations; ++it) {
    const double rho_new = dot(r0, r);
    if (rho_new == 0.0) break;
    if (it == 0) {
      p = r;
    } else {
      const double beta = (rho_new / rho) * (alpha / omega);
      for (std::int32_t i = 0; i < n; ++i)
        p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }
    rho = rho_new;
    for (std::int32_t i = 0; i < n; ++i) ph[i] = minv[i] * p[i];
    a.matvec(ph, v);
    const double r0v = dot(r0, v);
    if (r0v == 0.0) break;
    alpha = rho / r0v;
    for (std::int32_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    res.iterations = it + 1;
    if (norm(s) / bnorm <= opt.rel_tol) {
      for (std::int32_t i = 0; i < n; ++i) x[i] += alpha * ph[i];
      res.residual = norm(s) / bnorm;
      res.converged = true;
      return res;
    }
    for (std::int32_t i = 0; i < n; ++i) sh[i] = minv[i] * s[i];
    a.matvec(sh, t);
    const double tt = dot(t, t);
    if (tt == 0.0) break;
    omega = dot(t, s) / tt;
    for (std::int32_t i = 0; i < n; ++i) {
      x[i] += alpha * ph[i] + omega * sh[i];
      r[i] = s[i] - omega * t[i];
    }
    res.residual = norm(r) / bnorm;
    if (res.residual <= opt.rel_tol) {
      res.converged = true;
      return res;
    }
    if (omega == 0.0) break;
  }
  return res;
}

SolveResult gmres(const CsrMatrix& a, std::span<const double> b,
                  std::span<double> x, const SolveOptions& opt) {
  const std::int32_t n = a.rows();
  DSMCPIC_CHECK(a.cols() == n);
  DSMCPIC_CHECK(static_cast<std::int32_t>(b.size()) == n);
  DSMCPIC_CHECK(static_cast<std::int32_t>(x.size()) == n);
  const int m = std::max(1, opt.gmres_restart);

  const std::vector<double> minv =
      opt.jacobi_precondition ? inv_diag(a) : std::vector<double>(n, 1.0);
  const double bnorm = std::max(norm(b), 1e-300);

  SolveResult res;
  std::vector<double> r(n), w(n);
  std::vector<std::vector<double>> v;  // Krylov basis
  std::vector<std::vector<double>> h(m + 1, std::vector<double>(m, 0.0));
  std::vector<double> cs(m), sn(m), g(m + 1);

  int total_it = 0;
  while (total_it < opt.max_iterations) {
    a.matvec(x, r);
    for (std::int32_t i = 0; i < n; ++i) r[i] = minv[i] * (b[i] - r[i]);
    double beta = norm(r);
    res.residual = beta / bnorm;
    if (res.residual <= opt.rel_tol) {
      res.converged = true;
      return res;
    }
    v.assign(1, std::vector<double>(n));
    for (std::int32_t i = 0; i < n; ++i) v[0][i] = r[i] / beta;
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int k = 0;
    for (; k < m && total_it < opt.max_iterations; ++k, ++total_it) {
      a.matvec(v[k], w);
      for (std::int32_t i = 0; i < n; ++i) w[i] *= minv[i];
      // Modified Gram-Schmidt.
      for (int j = 0; j <= k; ++j) {
        h[j][k] = dot(w, v[j]);
        for (std::int32_t i = 0; i < n; ++i) w[i] -= h[j][k] * v[j][i];
      }
      h[k + 1][k] = norm(w);
      if (h[k + 1][k] != 0.0) {
        v.emplace_back(n);
        for (std::int32_t i = 0; i < n; ++i) v[k + 1][i] = w[i] / h[k + 1][k];
      }
      // Apply previous Givens rotations to the new column.
      for (int j = 0; j < k; ++j) {
        const double tmp = cs[j] * h[j][k] + sn[j] * h[j + 1][k];
        h[j + 1][k] = -sn[j] * h[j][k] + cs[j] * h[j + 1][k];
        h[j][k] = tmp;
      }
      const double denom = std::hypot(h[k][k], h[k + 1][k]);
      if (denom == 0.0) break;
      cs[k] = h[k][k] / denom;
      sn[k] = h[k + 1][k] / denom;
      h[k][k] = denom;
      h[k + 1][k] = 0.0;
      g[k + 1] = -sn[k] * g[k];
      g[k] = cs[k] * g[k];
      res.iterations = total_it + 1;
      res.residual = std::abs(g[k + 1]) / bnorm;
      if (res.residual <= opt.rel_tol) {
        ++k;
        break;
      }
      if (h[k + 1][k] == 0.0 && v.size() <= static_cast<std::size_t>(k + 1))
        break;  // lucky breakdown without a new basis vector
    }
    // Back substitution for y, then update x.
    std::vector<double> y(k, 0.0);
    for (int j = k - 1; j >= 0; --j) {
      double s = g[j];
      for (int l = j + 1; l < k; ++l) s -= h[j][l] * y[l];
      y[j] = (h[j][j] != 0.0) ? s / h[j][j] : 0.0;
    }
    for (int j = 0; j < k; ++j)
      for (std::int32_t i = 0; i < n; ++i) x[i] += y[j] * v[j][i];
    if (res.residual <= opt.rel_tol) {
      res.converged = true;
      return res;
    }
    if (k == 0) break;  // no progress possible
  }
  return res;
}

}  // namespace dsmcpic::linalg
