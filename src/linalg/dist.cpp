#include "linalg/dist.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "support/error.hpp"

namespace dsmcpic::linalg {

DistLayout DistLayout::build(int nranks, std::span<const std::int32_t> row_owner,
                             const CsrMatrix& pattern) {
  DSMCPIC_CHECK(pattern.rows() == pattern.cols());
  DSMCPIC_CHECK(static_cast<std::int32_t>(row_owner.size()) == pattern.rows());

  DistLayout l;
  l.nranks = nranks;
  l.owner.assign(row_owner.begin(), row_owner.end());
  l.owned.resize(nranks);
  l.halo.resize(nranks);
  l.send_plan.resize(nranks);
  l.recv_plan.resize(nranks);

  for (std::int32_t g = 0; g < pattern.rows(); ++g) {
    DSMCPIC_CHECK_MSG(row_owner[g] >= 0 && row_owner[g] < nranks,
                      "row " << g << " has invalid owner " << row_owner[g]);
    l.owned[row_owner[g]].push_back(g);  // ascending by construction
  }

  // Halo: off-rank columns referenced by owned rows.
  const auto& rp = pattern.row_ptr();
  const auto& ci = pattern.col_idx();
  std::vector<std::vector<std::int32_t>> halo_sets(nranks);
  for (int r = 0; r < nranks; ++r) {
    auto& hs = halo_sets[r];
    for (std::int32_t g : l.owned[r])
      for (std::int64_t e = rp[g]; e < rp[g + 1]; ++e) {
        const std::int32_t c = ci[static_cast<std::size_t>(e)];
        if (row_owner[c] != r) hs.push_back(c);
      }
    std::sort(hs.begin(), hs.end());
    hs.erase(std::unique(hs.begin(), hs.end()), hs.end());
    l.halo[r] = hs;
  }

  // Owned-id -> owned-local-index per rank (owned lists are sorted).
  auto owned_index = [&l](int r, std::int32_t g) {
    const auto& o = l.owned[r];
    const auto it = std::lower_bound(o.begin(), o.end(), g);
    DSMCPIC_CHECK(it != o.end() && *it == g);
    return static_cast<std::int32_t>(it - o.begin());
  };

  // recv plans: group each rank's halo by owner; send plans mirror them.
  std::vector<std::map<int, DistLayout::Plan>> send_acc(nranks);
  for (int r = 0; r < nranks; ++r) {
    std::map<int, DistLayout::Plan> recv_acc;
    for (std::size_t h = 0; h < l.halo[r].size(); ++h) {
      const std::int32_t g = l.halo[r][h];
      const int p = row_owner[g];
      auto& rplan = recv_acc[p];
      rplan.peer = p;
      rplan.idx.push_back(static_cast<std::int32_t>(h));
      auto& splan = send_acc[p][r];
      splan.peer = r;
      splan.idx.push_back(owned_index(p, g));
    }
    for (auto& [peer, plan] : recv_acc)
      l.recv_plan[r].push_back(std::move(plan));
  }
  for (int r = 0; r < nranks; ++r)
    for (auto& [peer, plan] : send_acc[r])
      l.send_plan[r].push_back(std::move(plan));
  return l;
}

std::int32_t DistLayout::local_index(int r, std::int32_t g) const {
  const auto& o = owned[r];
  auto it = std::lower_bound(o.begin(), o.end(), g);
  if (it != o.end() && *it == g)
    return static_cast<std::int32_t>(it - o.begin());
  const auto& h = halo[r];
  it = std::lower_bound(h.begin(), h.end(), g);
  if (it != h.end() && *it == g)
    return static_cast<std::int32_t>(o.size() + (it - h.begin()));
  return -1;
}

DistMatrix DistMatrix::build(const CsrMatrix& a, DistLayout layout) {
  DistMatrix dm;
  dm.layout = std::move(layout);
  const DistLayout& l = dm.layout;
  dm.local.resize(l.nranks);
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& vals = a.values();
  for (int r = 0; r < l.nranks; ++r) {
    std::vector<Triplet> trips;
    for (std::size_t row = 0; row < l.owned[r].size(); ++row) {
      const std::int32_t g = l.owned[r][row];
      for (std::int64_t e = rp[g]; e < rp[g + 1]; ++e) {
        const std::int32_t c = ci[static_cast<std::size_t>(e)];
        const std::int32_t lc = l.local_index(r, c);
        DSMCPIC_CHECK_MSG(lc >= 0, "column " << c << " missing from rank " << r
                                             << " local numbering");
        trips.push_back({static_cast<std::int32_t>(row), lc,
                         vals[static_cast<std::size_t>(e)]});
      }
    }
    dm.local[r] = CsrMatrix::from_triplets(
        static_cast<std::int32_t>(l.owned[r].size()), l.local_size(r), trips);
  }
  return dm;
}

DistVector scatter_vector(const DistLayout& layout, std::span<const double> v) {
  DSMCPIC_CHECK(static_cast<std::int32_t>(v.size()) == layout.num_global());
  DistVector out(layout.nranks);
  for (int r = 0; r < layout.nranks; ++r) {
    out[r].resize(layout.owned[r].size());
    for (std::size_t i = 0; i < layout.owned[r].size(); ++i)
      out[r][i] = v[layout.owned[r][i]];
  }
  return out;
}

std::vector<double> gather_vector(const DistLayout& layout, const DistVector& v) {
  std::vector<double> out(layout.num_global(), 0.0);
  for (int r = 0; r < layout.nranks; ++r) {
    DSMCPIC_CHECK(v[r].size() >= layout.owned[r].size());
    for (std::size_t i = 0; i < layout.owned[r].size(); ++i)
      out[layout.owned[r][i]] = v[r][i];
  }
  return out;
}

void halo_exchange(par::Runtime& rt, const std::string& phase,
                   const DistLayout& layout,
                   std::vector<std::vector<double>>& local) {
  rt.superstep(phase, [&](par::Comm& c) {
    const int r = c.rank();
    for (const auto& plan : layout.send_plan[r]) {
      auto buf = c.acquire_payload(plan.idx.size() * sizeof(double));
      auto* d = reinterpret_cast<double*>(buf.data());
      for (std::size_t i = 0; i < plan.idx.size(); ++i)
        d[i] = local[r][plan.idx[i]];
      c.charge(par::WorkKind::kPackByte, static_cast<double>(buf.size()));
      c.send_owned(plan.peer, /*tag=*/0, std::move(buf),
                   par::CostClass::kGrid);
    }
  });
  rt.superstep(phase, [&](par::Comm& c) {
    const int r = c.rank();
    const std::size_t nowned = layout.owned[r].size();
    for (const auto& msg : c.inbox()) {
      const std::span<const double> buf = msg.view<double>();
      const auto it = std::find_if(
          layout.recv_plan[r].begin(), layout.recv_plan[r].end(),
          [&msg](const DistLayout::Plan& p) { return p.peer == msg.src; });
      DSMCPIC_CHECK_MSG(it != layout.recv_plan[r].end(),
                        "unexpected halo message from rank " << msg.src);
      DSMCPIC_CHECK(buf.size() == it->idx.size());
      for (std::size_t i = 0; i < buf.size(); ++i)
        local[r][nowned + static_cast<std::size_t>(it->idx[i])] = buf[i];
    }
  });
}

namespace {

/// Applies the local preconditioner z = M^-1 r on one rank's owned block.
/// For kBlockSsor: M = (D+L) D^-1 (D+U) restricted to owned columns (block
/// Jacobi across ranks); SPD, so CG-safe. `diag`/`inv_diag` are the owned
/// rows' diagonal and its inverse; `scratch` must be owned-sized.
void apply_precon_local(const CsrMatrix& a, std::size_t nowned,
                        Precon kind, std::span<const double> diag,
                        std::span<const double> inv_diag,
                        std::span<const double> r, std::span<double> z,
                        std::vector<double>& scratch) {
  switch (kind) {
    case Precon::kNone:
      for (std::size_t i = 0; i < nowned; ++i) z[i] = r[i];
      return;
    case Precon::kJacobi:
      for (std::size_t i = 0; i < nowned; ++i) z[i] = inv_diag[i] * r[i];
      return;
    case Precon::kBlockSsor:
      break;
  }
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& vals = a.values();
  auto& u = scratch;
  // Forward solve (D+L) u = r over owned columns only.
  for (std::size_t i = 0; i < nowned; ++i) {
    double s = r[i];
    for (std::int64_t e = rp[i]; e < rp[i + 1]; ++e) {
      const auto j = static_cast<std::size_t>(ci[static_cast<std::size_t>(e)]);
      if (j < i) s -= vals[static_cast<std::size_t>(e)] * u[j];
    }
    u[i] = s * inv_diag[i];
  }
  // Backward solve (D+U) z = D u over owned columns only.
  for (std::size_t ii = nowned; ii-- > 0;) {
    double s = diag[ii] * u[ii];
    for (std::int64_t e = rp[ii]; e < rp[ii + 1]; ++e) {
      const auto j = static_cast<std::size_t>(ci[static_cast<std::size_t>(e)]);
      if (j > ii && j < nowned) s -= vals[static_cast<std::size_t>(e)] * z[j];
    }
    z[ii] = s * inv_diag[ii];
  }
}

}  // namespace

SolveResult dist_cg(par::Runtime& rt, const std::string& phase,
                    const DistMatrix& a, const DistVector& b, DistVector& x,
                    const SolveOptions& opt) {
  const DistLayout& l = a.layout;
  const int nranks = l.nranks;
  DSMCPIC_CHECK(rt.active_ranks() == nranks);

  // Per-rank state: owned-sized r, z, q, x; local-sized p (owned + halo).
  std::vector<std::vector<double>> rvec(nranks), zvec(nranks), qvec(nranks),
      pvec(nranks), minv(nranks), diag(nranks), scratch(nranks);
  for (int r = 0; r < nranks; ++r) {
    const auto n = l.owned[r].size();
    DSMCPIC_CHECK(b[r].size() == n);
    if (x[r].size() != n) x[r].assign(n, 0.0);
    rvec[r].resize(n);
    zvec[r].resize(n);
    qvec[r].resize(n);
    scratch[r].resize(n);
    pvec[r].assign(static_cast<std::size_t>(l.local_size(r)), 0.0);
    minv[r].resize(n);
    diag[r] = a.local[r].diagonal();
    for (std::size_t i = 0; i < n; ++i) {
      // Local row diag is complete (diagonal entries live on the owner).
      const double d = diag[r][i];
      if (d == 0.0) diag[r][i] = 1.0;
      minv[r][i] = 1.0 / diag[r][i];
    }
  }
  const double precon_flops =
      (opt.dist_precon == Precon::kBlockSsor) ? 4.0 : 1.0;
  auto precondition = [&](int r) {
    apply_precon_local(a.local[r], l.owned[r].size(), opt.dist_precon,
                       diag[r], minv[r], rvec[r], zvec[r], scratch[r]);
  };

  std::vector<std::vector<double>> partials(nranks, std::vector<double>(2, 0.0));

  // Inlined halo send/recv over pvec: the send piggybacks on whichever
  // superstep produced the new p (one superstep saved per CG iteration —
  // the runtime's closure dispatch is the simulator's hot path at 1536
  // virtual ranks).
  auto send_halo = [&](par::Comm& c) {
    const int r = c.rank();
    for (const auto& plan : l.send_plan[r]) {
      auto buf = c.acquire_payload(plan.idx.size() * sizeof(double));
      auto* d = reinterpret_cast<double*>(buf.data());
      for (std::size_t i = 0; i < plan.idx.size(); ++i)
        d[i] = pvec[r][plan.idx[i]];
      c.charge(par::WorkKind::kPackByte, static_cast<double>(buf.size()));
      c.send_owned(plan.peer, 0, std::move(buf), par::CostClass::kGrid);
    }
  };
  auto recv_halo = [&](par::Comm& c) {
    const int r = c.rank();
    const std::size_t nowned = l.owned[r].size();
    for (const auto& msg : c.inbox()) {
      const std::span<const double> buf = msg.view<double>();
      const auto it = std::find_if(
          l.recv_plan[r].begin(), l.recv_plan[r].end(),
          [&msg](const DistLayout::Plan& p) { return p.peer == msg.src; });
      DSMCPIC_CHECK_MSG(it != l.recv_plan[r].end(),
                        "unexpected halo message from rank " << msg.src);
      DSMCPIC_CHECK(buf.size() == it->idx.size());
      for (std::size_t i = 0; i < buf.size(); ++i)
        pvec[r][nowned + static_cast<std::size_t>(it->idx[i])] = buf[i];
    }
  };

  // r = b - A x  (x is the warm start): needs one halo exchange of x.
  rt.superstep(phase, [&](par::Comm& c) {
    const int r = c.rank();
    std::copy(x[r].begin(), x[r].end(), pvec[r].begin());
    send_halo(c);
  });
  rt.superstep(phase, [&](par::Comm& c) {
    const int r = c.rank();
    recv_halo(c);
    const auto n = l.owned[r].size();
    a.local[r].matvec(pvec[r], rvec[r]);
    c.charge(par::WorkKind::kSpmvFlop, 2.0 * static_cast<double>(a.local[r].nnz()));
    for (std::size_t i = 0; i < n; ++i) rvec[r][i] = b[r][i] - rvec[r][i];
    precondition(r);
    double rz = 0.0, bb = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      rz += rvec[r][i] * zvec[r][i];
      bb += b[r][i] * b[r][i];
    }
    c.charge(par::WorkKind::kVecFlop, 5.0 * static_cast<double>(n));
    c.charge(par::WorkKind::kSpmvFlop,
             precon_flops * static_cast<double>(a.local[r].nnz()));
    partials[r][0] = rz;
    partials[r][1] = bb;
  });
  auto sums = rt.allreduce_sum_vec(phase, partials);
  double rz = sums[0];
  const double bnorm = std::sqrt(std::max(sums[1], 1e-300));

  // p = z, and ship its halo for the first iteration.
  rt.superstep(phase, [&](par::Comm& c) {
    const int r = c.rank();
    std::copy(zvec[r].begin(), zvec[r].end(), pvec[r].begin());
    send_halo(c);
  });

  SolveResult res;
  // With Jacobi M, ||r||_M ~ ||r||; track true ||r|| via an extra partial.
  auto rnorm = [&]() {
    for (int r = 0; r < nranks; ++r) {
      double rr = 0.0;
      for (double v : rvec[r]) rr += v * v;
      partials[r][0] = rr;
      partials[r][1] = 0.0;
    }
    auto s = rt.allreduce_sum_vec(phase, partials);
    return std::sqrt(s[0]);
  };
  res.residual = rnorm() / bnorm;
  if (res.residual <= opt.rel_tol) {
    res.converged = true;
    return res;
  }

  for (int it = 0; it < opt.max_iterations; ++it) {
    rt.superstep(phase, [&](par::Comm& c) {
      const int r = c.rank();
      recv_halo(c);
      a.local[r].matvec(pvec[r], qvec[r]);
      c.charge(par::WorkKind::kSpmvFlop,
               2.0 * static_cast<double>(a.local[r].nnz()));
      double pq = 0.0;
      for (std::size_t i = 0; i < l.owned[r].size(); ++i)
        pq += pvec[r][i] * qvec[r][i];
      c.charge(par::WorkKind::kVecFlop, 2.0 * static_cast<double>(l.owned[r].size()));
      partials[r][0] = pq;
      partials[r][1] = 0.0;
    });
    const double pq = rt.allreduce_sum_vec(phase, partials)[0];
    if (pq == 0.0) break;
    const double alpha = rz / pq;

    rt.superstep(phase, [&](par::Comm& c) {
      const int r = c.rank();
      const auto n = l.owned[r].size();
      for (std::size_t i = 0; i < n; ++i) {
        x[r][i] += alpha * pvec[r][i];
        rvec[r][i] -= alpha * qvec[r][i];
      }
      precondition(r);
      double rz_new = 0.0, rr = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        rz_new += rvec[r][i] * zvec[r][i];
        rr += rvec[r][i] * rvec[r][i];
      }
      c.charge(par::WorkKind::kVecFlop, 8.0 * static_cast<double>(n));
      c.charge(par::WorkKind::kSpmvFlop,
               precon_flops * static_cast<double>(a.local[r].nnz()));
      partials[r][0] = rz_new;
      partials[r][1] = rr;
    });
    sums = rt.allreduce_sum_vec(phase, partials);
    const double rz_new = sums[0];
    res.iterations = it + 1;
    res.residual = std::sqrt(sums[1]) / bnorm;
    if (res.residual <= opt.rel_tol) {
      res.converged = true;
      return res;
    }
    const double beta = rz_new / rz;
    rz = rz_new;
    rt.superstep(phase, [&](par::Comm& c) {
      const int r = c.rank();
      const auto n = l.owned[r].size();
      for (std::size_t i = 0; i < n; ++i)
        pvec[r][i] = zvec[r][i] + beta * pvec[r][i];
      c.charge(par::WorkKind::kVecFlop, 2.0 * static_cast<double>(n));
      send_halo(c);
    });
  }
  return res;
}

SolveResult dist_bicgstab(par::Runtime& rt, const std::string& phase,
                          const DistMatrix& a, const DistVector& b,
                          DistVector& x, const SolveOptions& opt) {
  const DistLayout& l = a.layout;
  const int nranks = l.nranks;
  DSMCPIC_CHECK(rt.active_ranks() == nranks);

  // Per-rank state: owned-sized r, r0, s, t, v, p; local-sized work vector
  // for the two halo'd matvecs (its owned prefix carries M^-1 p / M^-1 s).
  std::vector<std::vector<double>> rvec(nranks), r0vec(nranks), svec(nranks),
      tvec(nranks), vvec(nranks), pvec(nranks), work(nranks), minv(nranks);
  for (int r = 0; r < nranks; ++r) {
    const auto n = l.owned[r].size();
    DSMCPIC_CHECK(b[r].size() == n);
    if (x[r].size() != n) x[r].assign(n, 0.0);
    rvec[r].resize(n);
    r0vec[r].resize(n);
    svec[r].resize(n);
    tvec[r].resize(n);
    vvec[r].resize(n);
    pvec[r].assign(n, 0.0);
    work[r].assign(static_cast<std::size_t>(l.local_size(r)), 0.0);
    minv[r].resize(n);
    const auto diag = a.local[r].diagonal();
    for (std::size_t i = 0; i < n; ++i)
      minv[r][i] = (opt.jacobi_precondition && diag[i] != 0.0)
                       ? 1.0 / diag[i]
                       : 1.0;
  }

  auto send_halo = [&](par::Comm& c) {
    const int r = c.rank();
    for (const auto& plan : l.send_plan[r]) {
      auto buf = c.acquire_payload(plan.idx.size() * sizeof(double));
      auto* d = reinterpret_cast<double*>(buf.data());
      for (std::size_t i = 0; i < plan.idx.size(); ++i)
        d[i] = work[r][plan.idx[i]];
      c.charge(par::WorkKind::kPackByte, static_cast<double>(buf.size()));
      c.send_owned(plan.peer, 0, std::move(buf), par::CostClass::kGrid);
    }
  };
  auto recv_halo = [&](par::Comm& c) {
    const int r = c.rank();
    const std::size_t nowned = l.owned[r].size();
    for (const auto& msg : c.inbox()) {
      const std::span<const double> buf = msg.view<double>();
      const auto it = std::find_if(
          l.recv_plan[r].begin(), l.recv_plan[r].end(),
          [&msg](const DistLayout::Plan& p) { return p.peer == msg.src; });
      DSMCPIC_CHECK(it != l.recv_plan[r].end() && buf.size() == it->idx.size());
      for (std::size_t i = 0; i < buf.size(); ++i)
        work[r][nowned + static_cast<std::size_t>(it->idx[i])] = buf[i];
    }
  };
  // y[r] = A * (work's owned prefix as filled by fill_owned): two supersteps.
  auto halo_matvec = [&](auto fill_owned, std::vector<std::vector<double>>& y) {
    rt.superstep(phase, [&](par::Comm& c) {
      const int r = c.rank();
      fill_owned(r);
      send_halo(c);
    });
    rt.superstep(phase, [&](par::Comm& c) {
      const int r = c.rank();
      recv_halo(c);
      a.local[r].matvec(work[r], y[r]);
      c.charge(par::WorkKind::kSpmvFlop,
               2.0 * static_cast<double>(a.local[r].nnz()));
    });
  };

  std::vector<std::vector<double>> partials(nranks, std::vector<double>(2, 0.0));
  auto reduce2 = [&](auto fn) {
    rt.superstep(phase, [&](par::Comm& c) {
      const int r = c.rank();
      fn(r, partials[r]);
      c.charge(par::WorkKind::kVecFlop,
               4.0 * static_cast<double>(l.owned[r].size()));
    });
    return rt.allreduce_sum_vec(phase, partials);
  };

  // r = b - A x; r0 = r.
  halo_matvec(
      [&](int r) { std::copy(x[r].begin(), x[r].end(), work[r].begin()); },
      rvec);
  auto sums = reduce2([&](int r, std::vector<double>& p) {
    double rr = 0.0, bb = 0.0;
    for (std::size_t i = 0; i < l.owned[r].size(); ++i) {
      rvec[r][i] = b[r][i] - rvec[r][i];
      r0vec[r][i] = rvec[r][i];
      rr += rvec[r][i] * rvec[r][i];
      bb += b[r][i] * b[r][i];
    }
    p[0] = rr;
    p[1] = bb;
  });
  const double bnorm = std::sqrt(std::max(sums[1], 1e-300));
  SolveResult res;
  res.residual = std::sqrt(sums[0]) / bnorm;
  if (res.residual <= opt.rel_tol) {
    res.converged = true;
    return res;
  }

  double rho = 1.0, alpha = 1.0, omega = 1.0;
  for (int it = 0; it < opt.max_iterations; ++it) {
    sums = reduce2([&](int r, std::vector<double>& p) {
      double rho_new = 0.0;
      for (std::size_t i = 0; i < l.owned[r].size(); ++i)
        rho_new += r0vec[r][i] * rvec[r][i];
      p[0] = rho_new;
      p[1] = 0.0;
    });
    const double rho_new = sums[0];
    if (rho_new == 0.0) break;
    const double beta = (it == 0) ? 0.0 : (rho_new / rho) * (alpha / omega);
    rho = rho_new;

    // v = A M^-1 p, with p updated in the fill step.
    halo_matvec(
        [&](int r) {
          for (std::size_t i = 0; i < l.owned[r].size(); ++i) {
            pvec[r][i] =
                (it == 0) ? rvec[r][i]
                          : rvec[r][i] + beta * (pvec[r][i] - omega * vvec[r][i]);
            work[r][i] = minv[r][i] * pvec[r][i];
          }
        },
        vvec);
    sums = reduce2([&](int r, std::vector<double>& p) {
      double r0v = 0.0;
      for (std::size_t i = 0; i < l.owned[r].size(); ++i)
        r0v += r0vec[r][i] * vvec[r][i];
      p[0] = r0v;
      p[1] = 0.0;
    });
    if (sums[0] == 0.0) break;
    alpha = rho / sums[0];

    // s = r - alpha v; t = A M^-1 s.
    halo_matvec(
        [&](int r) {
          for (std::size_t i = 0; i < l.owned[r].size(); ++i) {
            svec[r][i] = rvec[r][i] - alpha * vvec[r][i];
            work[r][i] = minv[r][i] * svec[r][i];
          }
        },
        tvec);
    sums = reduce2([&](int r, std::vector<double>& p) {
      double ts = 0.0, tt = 0.0;
      for (std::size_t i = 0; i < l.owned[r].size(); ++i) {
        ts += tvec[r][i] * svec[r][i];
        tt += tvec[r][i] * tvec[r][i];
      }
      p[0] = ts;
      p[1] = tt;
    });
    if (sums[1] == 0.0) break;
    omega = sums[0] / sums[1];

    sums = reduce2([&](int r, std::vector<double>& p) {
      double rr = 0.0;
      for (std::size_t i = 0; i < l.owned[r].size(); ++i) {
        x[r][i] += alpha * minv[r][i] * pvec[r][i] +
                   omega * minv[r][i] * svec[r][i];
        rvec[r][i] = svec[r][i] - omega * tvec[r][i];
        rr += rvec[r][i] * rvec[r][i];
      }
      p[0] = rr;
      p[1] = 0.0;
    });
    res.iterations = it + 1;
    res.residual = std::sqrt(sums[0]) / bnorm;
    if (res.residual <= opt.rel_tol) {
      res.converged = true;
      return res;
    }
    if (omega == 0.0) break;
  }
  return res;
}

}  // namespace dsmcpic::linalg
