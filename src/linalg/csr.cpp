#include "linalg/csr.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace dsmcpic::linalg {

CsrMatrix CsrMatrix::from_triplets(std::int32_t rows, std::int32_t cols,
                                   std::span<const Triplet> triplets) {
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  std::vector<Triplet> sorted(triplets.begin(), triplets.end());
  for (const auto& t : sorted) {
    DSMCPIC_CHECK_MSG(t.row >= 0 && t.row < rows, "triplet row out of range");
    DSMCPIC_CHECK_MSG(t.col >= 0 && t.col < cols, "triplet col out of range");
  }
  std::sort(sorted.begin(), sorted.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(sorted.size());
  m.values_.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size();) {
    const std::int32_t r = sorted[i].row;
    const std::int32_t c = sorted[i].col;
    double v = 0.0;
    while (i < sorted.size() && sorted[i].row == r && sorted[i].col == c)
      v += sorted[i++].value;
    m.col_idx_.push_back(c);
    m.values_.push_back(v);
    ++m.row_ptr_[r + 1];
  }
  for (std::int32_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

void CsrMatrix::matvec(std::span<const double> x, std::span<double> y) const {
  DSMCPIC_CHECK(static_cast<std::int32_t>(x.size()) >= cols_);
  DSMCPIC_CHECK(static_cast<std::int32_t>(y.size()) >= rows_);
  for (std::int32_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::int64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e)
      acc += values_[static_cast<std::size_t>(e)] *
             x[col_idx_[static_cast<std::size_t>(e)]];
    y[r] = acc;
  }
}

void CsrMatrix::matvec_add(std::span<const double> x, std::span<double> y) const {
  DSMCPIC_CHECK(static_cast<std::int32_t>(x.size()) >= cols_);
  DSMCPIC_CHECK(static_cast<std::int32_t>(y.size()) >= rows_);
  for (std::int32_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::int64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e)
      acc += values_[static_cast<std::size_t>(e)] *
             x[col_idx_[static_cast<std::size_t>(e)]];
    y[r] += acc;
  }
}

std::vector<double> CsrMatrix::diagonal() const {
  std::vector<double> d(rows_, 0.0);
  for (std::int32_t r = 0; r < rows_ && r < cols_; ++r) d[r] = at(r, r);
  return d;
}

double CsrMatrix::at(std::int32_t row, std::int32_t col) const {
  DSMCPIC_CHECK(row >= 0 && row < rows_);
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

bool CsrMatrix::diagonally_dominant(double tol) const {
  for (std::int32_t r = 0; r < rows_; ++r) {
    double diag = 0.0, off = 0.0;
    for (std::int64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      const double v = values_[static_cast<std::size_t>(e)];
      if (col_idx_[static_cast<std::size_t>(e)] == r)
        diag += std::abs(v);
      else
        off += std::abs(v);
    }
    if (diag + tol < off) return false;
  }
  return true;
}

}  // namespace dsmcpic::linalg
