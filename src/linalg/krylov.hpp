#pragma once
// Serial Krylov subspace solvers (the "KSP" substitute, Sec. IV-C). The
// serial variants are the reference implementations used by the serial
// solver driver and by tests; the distributed CG in dist.hpp runs the same
// recurrence across virtual ranks.

#include <span>

#include "linalg/csr.hpp"

namespace dsmcpic::linalg {

struct SolveResult {
  int iterations = 0;
  double residual = 0.0;  // final relative residual ||r|| / ||b||
  bool converged = false;
};

/// Preconditioner selection for the distributed CG. kBlockSsor applies a
/// symmetric Gauss-Seidel sweep on each rank's owned diagonal block (block
/// Jacobi between ranks — the same flavour as PETSc's default block
/// Jacobi/ILU, and like it, its strength decreases as ranks grow).
enum class Precon { kNone, kJacobi, kBlockSsor };

struct SolveOptions {
  double rel_tol = 1e-8;
  int max_iterations = 1000;
  bool jacobi_precondition = true;  // serial solvers
  Precon dist_precon = Precon::kBlockSsor;  // distributed CG
  int gmres_restart = 30;
  /// Keep the previous solution as the initial guess across solves. PETSc's
  /// KSP defaults to a zero initial guess — which is why the paper's
  /// Poisson_Solve pays the full iteration count every PIC step — so this
  /// defaults to false; the solver zeroes x before each solve unless set.
  bool warm_start = false;
};

/// Preconditioned conjugate gradient; A must be symmetric positive
/// (semi-)definite. x is the initial guess on input (warm start) and the
/// solution on output.
SolveResult cg(const CsrMatrix& a, std::span<const double> b,
               std::span<double> x, const SolveOptions& opt = {});

/// BiCGStab for general nonsymmetric systems.
SolveResult bicgstab(const CsrMatrix& a, std::span<const double> b,
                     std::span<double> x, const SolveOptions& opt = {});

/// Restarted GMRES(m).
SolveResult gmres(const CsrMatrix& a, std::span<const double> b,
                  std::span<double> x, const SolveOptions& opt = {});

}  // namespace dsmcpic::linalg
