#pragma once
// Compressed Sparse Row matrix — the storage format the paper uses for the
// Poisson stiffness matrix K (Sec. IV-C: "we use the CSR format to reduce
// the memory footprint").

#include <cstdint>
#include <span>
#include <vector>

namespace dsmcpic::linalg {

struct Triplet {
  std::int32_t row = 0;
  std::int32_t col = 0;
  double value = 0.0;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from triplets; duplicate (row, col) entries are summed (the
  /// natural FEM assembly semantics).
  static CsrMatrix from_triplets(std::int32_t rows, std::int32_t cols,
                                 std::span<const Triplet> triplets);

  std::int32_t rows() const { return rows_; }
  std::int32_t cols() const { return cols_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(values_.size()); }

  const std::vector<std::int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::int32_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  /// y = A x.
  void matvec(std::span<const double> x, std::span<double> y) const;

  /// y += A x.
  void matvec_add(std::span<const double> x, std::span<double> y) const;

  /// Main diagonal (square matrices); zeros where no stored entry exists.
  std::vector<double> diagonal() const;

  /// Entry lookup (binary search within the row); 0 if not stored.
  double at(std::int32_t row, std::int32_t col) const;

  /// True when the matrix is (weakly) row-diagonally dominant — the paper's
  /// K is constructed to be diagonally dominant; tests assert this.
  bool diagonally_dominant(double tol = 1e-12) const;

 private:
  std::int32_t rows_ = 0;
  std::int32_t cols_ = 0;
  std::vector<std::int64_t> row_ptr_;
  std::vector<std::int32_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace dsmcpic::linalg
