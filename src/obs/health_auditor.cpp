#include "obs/health_auditor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.hpp"
#include "support/log.hpp"

namespace dsmcpic::obs {

const char* invariant_name(Invariant inv) {
  switch (inv) {
    case Invariant::kParticleBooks:
      return "particle_books";
    case Invariant::kExchangeConservation:
      return "exchange_conservation";
    case Invariant::kChargeBalance:
      return "charge_balance";
    case Invariant::kPoissonResidual:
      return "poisson_residual";
    case Invariant::kOwnership:
      return "ownership";
    case Invariant::kMailboxDrained:
      return "mailbox_drained";
    case Invariant::kRebalanceCost:
      return "rebalance_cost";
  }
  return "unknown";
}

const char* audit_severity_name(AuditSeverity s) {
  switch (s) {
    case AuditSeverity::kWarnOnly:
      return "warn";
    case AuditSeverity::kAbort:
      return "abort";
    case AuditSeverity::kCountOnly:
      return "count";
  }
  return "unknown";
}

AuditSeverity parse_audit_severity(const std::string& name) {
  if (name == "warn") return AuditSeverity::kWarnOnly;
  if (name == "abort") return AuditSeverity::kAbort;
  if (name == "count") return AuditSeverity::kCountOnly;
  throw Error("unknown audit severity '" + name +
              "' (expected warn|abort|count)");
}

std::int64_t AuditReport::checks() const {
  std::int64_t n = 0;
  for (const auto& t : by_invariant) n += t.checks;
  return n;
}

std::int64_t AuditReport::violations() const {
  std::int64_t n = 0;
  for (const auto& t : by_invariant) n += t.violations;
  return n;
}

HealthAuditor::HealthAuditor(AuditConfig cfg) : cfg_(cfg) {}

void HealthAuditor::check(Invariant inv, bool ok, const std::string& detail) {
  auto& tally = report_.by_invariant[static_cast<std::size_t>(inv)];
  ++tally.checks;
  if (ok) return;
  ++tally.violations;
  std::ostringstream os;
  os << "step " << step_ << ": " << invariant_name(inv) << " violated: "
     << detail;
  const std::string msg = os.str();
  if (report_.first_violation.empty()) {
    report_.first_violation = msg;
    report_.first_violation_step = step_;
  }
  switch (cfg_.severity) {
    case AuditSeverity::kWarnOnly:
      LOG_WARN_C("audit", msg);
      break;
    case AuditSeverity::kAbort:
      throw Error("audit: " + msg);
    case AuditSeverity::kCountOnly:
      break;
  }
}

void HealthAuditor::begin_step(int step, std::int64_t alive) {
  step_ = step;
  step_begin_alive_ = alive;
  injected_ = 0;
  spawned_ = 0;
  flagged_ = 0;
  dropped_total_ = 0;
}

void HealthAuditor::check_exchange(const char* phase, std::int64_t total_before,
                                   std::int64_t dropped,
                                   std::int64_t total_after) {
  check(Invariant::kExchangeConservation,
        total_after == total_before - dropped && dropped == flagged_,
        [&] {
          std::ostringstream os;
          os << phase << " exchange: before=" << total_before
             << " dropped=" << dropped << " after=" << total_after
             << " expected_drops(flagged)=" << flagged_;
          return os.str();
        }());
  dropped_total_ += dropped;
  flagged_ = 0;  // the exchange consumed (compacted away) all flags
}

void HealthAuditor::end_step(std::int64_t alive,
                             std::int64_t undelivered_messages) {
  const std::int64_t expected =
      step_begin_alive_ + injected_ + spawned_ - dropped_total_;
  check(Invariant::kParticleBooks, alive == expected, [&] {
    std::ostringstream os;
    os << "begin=" << step_begin_alive_ << " +injected=" << injected_
       << " +spawned=" << spawned_ << " -dropped=" << dropped_total_
       << " => expected " << expected << " alive, found " << alive;
    return os.str();
  }());
  check(Invariant::kMailboxDrained, undelivered_messages == 0, [&] {
    std::ostringstream os;
    os << undelivered_messages << " undelivered message(s) in the runtime";
    return os.str();
  }());
}

void HealthAuditor::check_charge(double particle_charge,
                                 double deposited_charge) {
  const double scale =
      std::max({std::abs(particle_charge), std::abs(deposited_charge), 1e-300});
  const double rel = std::abs(particle_charge - deposited_charge) / scale;
  check(Invariant::kChargeBalance,
        std::isfinite(deposited_charge) && rel <= cfg_.charge_rel_tol, [&] {
          std::ostringstream os;
          os.precision(17);
          os << "deposited=" << deposited_charge
             << " vs particle=" << particle_charge << " (rel err " << rel
             << ", tol " << cfg_.charge_rel_tol << ")";
          return os.str();
        }());
}

void HealthAuditor::check_poisson(int iterations, double residual,
                                  double rel_tol, bool converged) {
  const double bound = converged ? rel_tol : cfg_.poisson_residual_bound;
  check(Invariant::kPoissonResidual,
        std::isfinite(residual) && residual <= bound, [&] {
          std::ostringstream os;
          os.precision(17);
          os << "cg " << (converged ? "converged" : "NOT converged") << " after "
             << iterations << " iterations, residual " << residual
             << " exceeds bound " << bound;
          return os.str();
        }());
}

void HealthAuditor::check_ownership(
    std::span<const std::int32_t> owner, int nranks,
    const std::vector<std::vector<std::int32_t>>& rank_cells) {
  // Under an elastic ensemble rank_cells keeps its NOMINAL size while
  // `nranks` is the active count: the lists beyond the active prefix must
  // be empty (parked ranks own nothing).
  bool ok = static_cast<int>(rank_cells.size()) >= nranks;
  std::string detail;
  for (std::size_t r = static_cast<std::size_t>(nranks);
       ok && r < rank_cells.size(); ++r) {
    if (!rank_cells[r].empty()) {
      std::ostringstream os;
      os << "parked rank " << r << " still lists " << rank_cells[r].size()
         << " cell(s)";
      detail = os.str();
      ok = false;
    }
  }
  // seen[c] counts appearances of cell c across all rank lists.
  std::vector<std::int32_t> seen(owner.size(), 0);
  for (std::size_t r = 0; ok && r < rank_cells.size(); ++r) {
    for (const std::int32_t c : rank_cells[r]) {
      if (c < 0 || static_cast<std::size_t>(c) >= owner.size() ||
          owner[c] != static_cast<std::int32_t>(r)) {
        std::ostringstream os;
        os << "cell " << c << " listed by rank " << r << " but owner is "
           << (c >= 0 && static_cast<std::size_t>(c) < owner.size()
                   ? owner[c]
                   : -1);
        detail = os.str();
        ok = false;
        break;
      }
      ++seen[static_cast<std::size_t>(c)];
    }
  }
  for (std::size_t c = 0; ok && c < owner.size(); ++c) {
    if (owner[c] < 0 || owner[c] >= nranks || seen[c] != 1) {
      std::ostringstream os;
      os << "cell " << c << " owned by rank " << owner[c] << " appears "
         << seen[c] << " time(s) in the rank cell lists";
      detail = os.str();
      ok = false;
    }
  }
  check(Invariant::kOwnership, ok, detail);
}

void HealthAuditor::check_rebalance_cost(double estimated, double measured) {
  // Either direction: a wildly over-estimating policy never rebalances, a
  // wildly under-estimating one thrashes. Both are feedback-loop breaks.
  const double f = cfg_.rebalance_cost_factor;
  const bool ok = std::isfinite(estimated) && std::isfinite(measured) &&
                  estimated >= 0.0 && measured >= 0.0 &&
                  estimated <= f * measured && measured <= f * estimated;
  check(Invariant::kRebalanceCost, ok, [&] {
    std::ostringstream os;
    os.precision(17);
    os << "policy estimated " << estimated << " vs measured " << measured
       << " (allowed factor " << f << ")";
    return os.str();
  }());
}

}  // namespace dsmcpic::obs
