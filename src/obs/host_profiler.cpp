#include "obs/host_profiler.hpp"

#include <algorithm>
#include <chrono>

namespace dsmcpic::obs {

namespace {
// Per-thread nesting stack: holds the '/'-joined path of open scopes on
// this thread. Thread-local so concurrent superstep bodies (ExecMode::
// kThreaded) and kernel lanes never observe each other's nesting.
thread_local std::string t_scope_path;
}  // namespace

double HostProfiler::now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

HostProfiler::Scope::Scope(HostProfiler* prof, const char* name)
    : prof_(prof) {
  if (!prof_) return;
  if (!t_scope_path.empty()) t_scope_path += '/';
  t_scope_path += name;
  t0_ms_ = now_ms();
}

HostProfiler::Scope::~Scope() {
  if (!prof_) return;
  const double ms = now_ms() - t0_ms_;
  prof_->record(t_scope_path, ms);
  const std::size_t slash = t_scope_path.find_last_of('/');
  t_scope_path.resize(slash == std::string::npos ? 0 : slash);
}

void HostProfiler::record(const std::string& kernel, double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  samples_[kernel].push_back(ms);
  total_ms_sum_ += ms;
}

std::map<std::string, HostProfiler::KernelStats> HostProfiler::stats() const {
  std::map<std::string, std::vector<double>> copy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    copy = samples_;
  }
  std::map<std::string, KernelStats> out;
  for (auto& [name, vals] : copy) {
    std::sort(vals.begin(), vals.end());
    KernelStats s;
    s.count = static_cast<std::int64_t>(vals.size());
    for (const double v : vals) s.total_ms += v;
    s.min_ms = vals.front();
    s.max_ms = vals.back();
    // Nearest-rank percentile: ceil(p * n) - 1.
    const auto rank = [&](double p) {
      const auto n = static_cast<std::int64_t>(vals.size());
      std::int64_t k = static_cast<std::int64_t>(p * static_cast<double>(n));
      if (static_cast<double>(k) < p * static_cast<double>(n)) ++k;
      return vals[static_cast<std::size_t>(std::max<std::int64_t>(k - 1, 0))];
    };
    s.p50_ms = rank(0.50);
    s.p95_ms = rank(0.95);
    out.emplace(name, s);
  }
  return out;
}

std::int64_t HostProfiler::sample_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t n = 0;
  for (const auto& [name, vals] : samples_) n += static_cast<std::int64_t>(vals.size());
  return n;
}

double HostProfiler::total_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ms_sum_;
}

void HostProfiler::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.clear();
  total_ms_sum_ = 0.0;
}

}  // namespace dsmcpic::obs
