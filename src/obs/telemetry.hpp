#pragma once
// Live telemetry bus (DESIGN.md §2f, docs/observability.md §6). The trace
// and run-report subsystems are strictly post-hoc: a Chrome trace or a
// run_report.json appears only after the run ends, and a run killed by a
// HealthAuditor abort leaves nothing to debug. This module watches the
// step loop live, from three angles:
//
//   * TelemetrySeries — fixed-capacity superstep time-series. Every DSMC
//     step the solver pushes one TelemetrySample (per-phase virtual time,
//     particle ledger, imbalance, rebalance decisions + cost-model
//     corrections, exchange bytes/messages, payload-pool stats, audit
//     tallies) and the hub fans the scalars into named series. When a
//     series fills it downsamples 2:1 — keep every other sample, double
//     the step stride — driven purely by the step index, so the retained
//     sample set is a pure function of (capacity, steps run).
//
//   * Flight recorder — ring of the last N full TelemetrySamples. On a
//     HealthAuditor abort, a fault-injection trip, or a solver park it
//     dumps postmortem.json: the deterministic slice of those records
//     (virtual time, ledger, phases, decisions, audit tallies — no
//     wall-clock, no pool internals), so the bytes are identical across
//     --exec-mode / --kernel-threads / --sort-every.
//
//   * Exposition — Prometheus text format (metrics.prom) + JSON snapshot
//     (metrics.json), republished atomically (tmp + rename) every K
//     samples, so an external scraper never sees a torn file. Host
//     wall-clock kernel totals from an attached HostProfiler ride along
//     here (and only here — they never enter the postmortem).
//
// Like every observer in obs/, the hub is pure observation: the solver
// copies values it already computed into a plain TelemetrySample (obs
// never includes core headers), nothing feeds back into physics, clocks
// or RNG streams, and attaching a hub cannot perturb golden digests,
// trace bytes or run_report.json bytes (tests/telemetry_test.cpp,
// tests/golden_test.cpp).

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace dsmcpic::obs {

class HostProfiler;

inline constexpr const char* kPostmortemSchema = "dsmcpic.postmortem.v1";
inline constexpr const char* kMetricsSchema = "dsmcpic.metrics.v1";

/// Cumulative virtual-time accounting of one runtime phase at a step
/// boundary (plain copy of par::PhaseStats + its name).
struct TelemetryPhase {
  std::string name;
  double busy_max = 0.0;
  double busy_min = 0.0;
  double busy_sum = 0.0;
  std::uint64_t transactions = 0;
  double bytes = 0.0;
};

/// One when-to-rebalance decision (plain copy of balance::PolicyDecision —
/// obs stays below balance in the layer graph).
struct TelemetryDecision {
  int step = 0;
  double lii = 0.0;
  double imbalance_per_step = 0.0;
  double projected_imbalance_cost = 0.0;
  double rebalance_cost_estimate = 0.0;
  bool rebalance = false;
};

/// Everything the solver knows at one superstep boundary, as plain values.
/// All fields except pool_* derive from deterministic virtual state, so
/// they are bit-identical across execution backends.
struct TelemetrySample {
  int step = 0;
  std::uint64_t supersteps = 0;   // runtime supersteps executed so far
  double virtual_time = 0.0;      // end-to-end virtual seconds so far
  int active_ranks = 0;

  // ---- particle ledger (this step) ----------------------------------------
  std::int64_t particles = 0;  // alive at step end
  std::int64_t total_h = 0;
  std::int64_t total_hplus = 0;
  std::int64_t injected = 0;
  std::int64_t migrated_dsmc = 0;
  std::int64_t migrated_pic = 0;
  std::int64_t collisions = 0;
  std::int64_t ionizations = 0;
  std::int64_t recombinations = 0;
  std::int64_t exited_dsmc = 0;
  std::int64_t exited_pic = 0;
  std::int64_t pic_lost = 0;
  std::vector<std::int64_t> particles_per_rank;

  double lii = 0.0;
  bool rebalanced = false;
  int poisson_iterations = 0;

  // ---- runtime accounting (cumulative at this boundary) -------------------
  std::vector<TelemetryPhase> phases;
  double exchange_bytes_delta = 0.0;        // migration bytes this step
  std::uint64_t exchange_messages_delta = 0;  // migration messages this step
  std::uint64_t pool_acquires = 0;  // PayloadPool counters (cumulative)
  std::uint64_t pool_misses = 0;
  std::uint64_t pool_recycles = 0;

  // ---- balancer state -----------------------------------------------------
  /// Cost-model per-rank correction factors over the active set (1.0
  /// everywhere on the static model).
  double cost_scale_min = 1.0;
  double cost_scale_max = 1.0;
  double cost_scale_mean = 1.0;
  /// Policy decisions recorded at this step (usually empty or one).
  std::vector<TelemetryDecision> decisions;

  // ---- audit tallies (cumulative; zero without an auditor) ----------------
  std::int64_t audit_checks = 0;
  std::int64_t audit_violations = 0;
};

/// Fixed-capacity (step, value) series with deterministic 2:1 downsampling.
/// Pushes are accepted only for steps that are multiples of the current
/// stride; when the buffer reaches capacity it keeps every other retained
/// sample and doubles the stride. Steps must arrive in increasing order
/// starting at 0, which the solver's step loop guarantees.
class TelemetrySeries {
 public:
  struct Point {
    std::int64_t step = 0;
    double value = 0.0;
  };

  explicit TelemetrySeries(int capacity);

  void push(std::int64_t step, double value);

  int capacity() const { return capacity_; }
  /// Current step stride between retained samples (1, 2, 4, ...).
  std::int64_t stride() const { return stride_; }
  const std::vector<Point>& points() const { return points_; }

 private:
  int capacity_;
  std::int64_t stride_ = 1;
  std::vector<Point> points_;
};

struct TelemetryConfig {
  /// Ring capacity of every time series (>= 2).
  int series_capacity = 128;
  /// Flight-recorder depth: last N samples kept for the postmortem (>= 1).
  int flight_recorder = 32;
  /// Publish metrics.prom/metrics.json every K samples (>= 1).
  int metrics_interval = 10;
  /// Exposition targets; empty paths disable that writer. The postmortem
  /// path may be set on its own (flight recorder without live scraping).
  std::string metrics_prom_path;
  std::string metrics_json_path;
  std::string postmortem_path;
  /// Value of the `run` label on every exposed metric ("" = no label).
  std::string run_label;
};

class TelemetryHub {
 public:
  explicit TelemetryHub(TelemetryConfig cfg = {});

  const TelemetryConfig& config() const { return cfg_; }

  /// Attaches a host profiler whose per-kernel total_ms are exposed at
  /// publish time (nullptr detaches). Never enters the postmortem.
  void set_host_profiler(const HostProfiler* prof) { prof_ = prof; }

  /// Ingests one superstep boundary: updates every series, the flight
  /// recorder and the cumulative counters, then republishes the exposition
  /// files when the sample ordinal crosses the configured interval.
  void on_step(const TelemetrySample& s);

  /// Writes metrics.prom / metrics.json (whichever paths are configured)
  /// atomically: the document is staged to "<path>.tmp" and renamed over
  /// the target, so readers only ever see complete files.
  void publish();

  /// Dumps the flight recorder to cfg.postmortem_path (no-op when the path
  /// is empty or a postmortem was already written — the FIRST trigger wins,
  /// so an abort mid-run is not overwritten by a later trigger).
  void dump_postmortem(const std::string& reason);
  bool postmortem_written() const { return postmortem_written_; }

  /// Serializes the postmortem document to `os` (deterministic bytes).
  void write_postmortem(std::ostream& os, const std::string& reason) const;
  /// Serializes the Prometheus text exposition to `os`.
  void write_prometheus(std::ostream& os) const;
  /// Serializes the JSON snapshot to `os`.
  void write_json_snapshot(std::ostream& os) const;

  // ---- inspection ---------------------------------------------------------
  std::int64_t samples_seen() const { return samples_seen_; }
  const std::deque<TelemetrySample>& flight() const { return flight_; }
  /// Named series, keys sorted (std::map) so exposition order is stable.
  const std::map<std::string, TelemetrySeries>& series() const {
    return series_;
  }
  std::int64_t publishes() const { return publishes_; }

 private:
  void push_series(const std::string& name, std::int64_t step, double value);

  TelemetryConfig cfg_;
  const HostProfiler* prof_ = nullptr;  // not owned

  std::int64_t samples_seen_ = 0;
  std::int64_t publishes_ = 0;
  bool postmortem_written_ = false;

  std::map<std::string, TelemetrySeries> series_;
  std::deque<TelemetrySample> flight_;

  // Cumulative ledger counters (sums of per-step deltas).
  std::int64_t injected_total_ = 0;
  std::int64_t migrated_dsmc_total_ = 0;
  std::int64_t migrated_pic_total_ = 0;
  std::int64_t collisions_total_ = 0;
  std::int64_t ionizations_total_ = 0;
  std::int64_t recombinations_total_ = 0;
  std::int64_t exited_total_ = 0;
  std::int64_t pic_lost_total_ = 0;
  std::int64_t rebalances_total_ = 0;
  double exchange_bytes_total_ = 0.0;
  std::uint64_t exchange_messages_total_ = 0;
};

/// Writes `content` to "<path>.tmp" and renames it over `path` (POSIX
/// rename is atomic within a filesystem). Throws dsmcpic::Error on I/O
/// failure. Shared by the hub and the fleet aggregator.
void atomic_write_file(const std::string& path, const std::string& content);

}  // namespace dsmcpic::obs
