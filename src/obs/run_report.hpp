#pragma once
// Machine-readable end-of-run report (DESIGN.md §2f). Every bench case can
// emit one `run_report.json` capturing what the run was (config echo), what
// the cost model said (virtual-time summary per phase), what the physics
// did (step totals), whether the books balanced (health-audit tallies) and
// where the host spent real milliseconds (host profile). scripts/
// check_report.sh validates the shape; scripts/check_bench_regression.py
// gates the kernel timings.
//
// The struct is plain values so this module stays below core in the layer
// graph: the bench harness (or any caller) copies the numbers out of
// core::RunSummary / StepDiagnostics and the runtime; obs never includes
// core headers. Serialization uses trace::JsonWriter, so identical inputs
// produce identical bytes (the host-profile milliseconds are wall-clock
// and naturally vary; the document *structure* never does).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/health_auditor.hpp"
#include "obs/host_profiler.hpp"

namespace dsmcpic::obs {

inline constexpr const char* kRunReportSchema = "dsmcpic.run_report.v1";

/// Cumulative virtual-time accounting of one runtime phase.
struct RunReportPhase {
  std::string name;
  double busy_max = 0.0;
  double busy_min = 0.0;
  double busy_sum = 0.0;
  std::uint64_t transactions = 0;
  double bytes = 0.0;
};

/// Echo of the case configuration (strings pre-rendered by the caller).
struct RunReportConfig {
  std::string bench;       // bench binary name, e.g. "bench_strategies"
  std::string case_name;   // human-readable case id within the bench
  int ranks = 0;
  int steps = 0;
  std::string machine;
  std::uint64_t seed = 0;
  std::string exec_mode;
  int exec_threads = 0;
  int kernel_threads = 0;
  int sort_every = 0;  // periodic cell-sort interval (0 = never)
  std::string strategy;
  bool balance = false;
  std::string audit_severity;  // "off" when no auditor was attached
  std::string cost_model;      // "static" | "timer" | "hybrid"
  std::string policy;          // "threshold" | "lookahead"
  int horizon = 0;             // look-ahead horizon H (steps)
};

/// Elastic rank ensemble summary (DESIGN.md §2i). `ranks` in the config
/// above stays the NOMINAL machine size; this section says how much of it
/// was actually dispatched. active_final == ranks and resizes == 0 on the
/// fixed dense path.
struct RunReportEnsemble {
  std::string kind = "fixed";  // "fixed" | "elastic"
  int ranks_min = 0;
  int ranks_max = 0;
  int active_initial = 0;
  int active_final = 0;
  int resizes = 0;
};

/// One when-to-rebalance decision, copied out of the balancer's policy by
/// the caller (plain values — obs stays below balance in the layer graph).
struct RunReportDecision {
  int step = 0;
  double lii = 0.0;
  double imbalance_per_step = 0.0;
  double projected_imbalance_cost = 0.0;
  double rebalance_cost_estimate = 0.0;
  bool rebalance = false;
};

/// Whole-run physics totals (summed over steps unless noted).
struct RunReportSteps {
  std::int64_t final_particles = 0;
  std::int64_t injected = 0;
  std::int64_t migrated_dsmc = 0;
  std::int64_t migrated_pic = 0;
  std::int64_t collisions = 0;
  std::int64_t ionizations = 0;
  std::int64_t recombinations = 0;
  std::int64_t rebalances = 0;
};

struct RunReport {
  RunReportConfig config;
  RunReportEnsemble ensemble;
  double total_virtual_time = 0.0;
  std::vector<RunReportPhase> phases;
  RunReportSteps steps;
  /// Every policy decision made during the run (empty when balancing was
  /// off). Deterministic: virtual-time inputs only.
  std::vector<RunReportDecision> rebalance_decisions;
  /// Optional sections; null pointer renders as {"enabled": false}.
  const AuditReport* audit = nullptr;
  const HostProfiler* profiler = nullptr;
};

void write_run_report(std::ostream& os, const RunReport& report);
/// Writes (overwrites) `path`; throws dsmcpic::Error on I/O failure.
void write_run_report_file(const std::string& path, const RunReport& report);

}  // namespace dsmcpic::obs
