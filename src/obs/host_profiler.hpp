#pragma once
// Host wall-clock profiler (DESIGN.md §2f). Where the trace subsystem
// records *virtual* time — the machine-model seconds the paper reasons
// about — this records *real* milliseconds spent in the solver's kernels
// on the host running the simulation: move / collide / react / deposit /
// field_solve / exchange / rebalance. It answers "is THIS machine getting
// slower", the question the bench regression gate
// (scripts/check_bench_regression.py) automates for bench_kernels.
//
// Contract with the deterministic core:
//  * strictly outside deterministic state — samples live only in the
//    profiler; nothing reads them back into physics, clocks, RNG streams
//    or traces, so golden digests and trace bytes are bit-identical with
//    the profiler attached or not (tests/obs_test.cpp);
//  * thread-aware — scopes may open on any thread: superstep bodies run
//    on the runtime's worker pool under ExecMode::kThreaded, and those
//    bodies call kernels that additionally fan out over a KernelExec pool.
//    Recording is mutex-protected, and the nesting stack that builds
//    hierarchical names ("rebalance/exchange") is thread-local so lanes
//    never see each other's open scopes.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <mutex>

namespace dsmcpic::obs {

class HostProfiler {
 public:
  /// Aggregated wall-clock statistics of one kernel (milliseconds).
  struct KernelStats {
    std::int64_t count = 0;
    double total_ms = 0.0;
    double min_ms = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double max_ms = 0.0;
  };

  /// RAII timing scope. Opening a scope pushes `name` onto the calling
  /// thread's nesting stack; nested scopes record under "outer/inner".
  class Scope {
   public:
    Scope(HostProfiler* prof, const char* name);  // prof may be null (no-op)
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    HostProfiler* prof_;
    double t0_ms_ = 0.0;
  };

  /// Records one sample directly (no nesting). Thread-safe.
  void record(const std::string& kernel, double ms);

  /// Aggregates every kernel's samples; keys sorted (std::map), so
  /// iteration — and hence the run-report section — is deterministic in
  /// structure. Percentiles use the nearest-rank method.
  std::map<std::string, KernelStats> stats() const;

  /// Total samples recorded (all kernels).
  std::int64_t sample_count() const;

  /// Sum of all recorded milliseconds across every kernel. O(1) bookkeeping
  /// (maintained on record), cheap enough for per-step telemetry sampling
  /// where stats() — which sorts every kernel's samples — is not.
  double total_ms() const;

  /// Drops all samples.
  void reset();

  /// Monotonic wall clock in milliseconds (steady_clock).
  static double now_ms();

 private:
  friend class Scope;
  mutable std::mutex mu_;
  std::map<std::string, std::vector<double>> samples_;
  double total_ms_sum_ = 0.0;
};

}  // namespace dsmcpic::obs
