#pragma once
// In-run invariant auditing for the coupled solver (DESIGN.md §2f). A run
// can be deterministic and still *wrong*: a leaked particle, an unbalanced
// charge deposit or an undrained mailbox only surfaces later as a diverged
// golden digest with no hint of where the books broke. The HealthAuditor
// watches the step loop live:
//
//   * particle books — owned + in-flight + absorbed + injected balance
//     across every step (begin + injected + spawned - dropped == end);
//   * exchange conservation — every migration preserves the live particle
//     count, and everything it drops was explicitly flagged beforehand
//     (move exits, locate losses, recombined ions);
//   * charge balance — total deposited node charge equals the summed
//     charge of the live charged particles it was scattered from;
//   * Poisson residual — the distributed CG's relative residual is finite
//     and within bound;
//   * ownership partition — every coarse cell is owned by exactly one
//     valid rank and appears in exactly its owner's cell list (checked
//     every step, so a botched rebalance is caught the step it happens);
//   * mailboxes drained — the BSP runtime holds no undelivered message at
//     step end;
//   * rebalance cost — the rebalance policy's recorded migration-cost
//     estimate stays within a factor of the measured rebalance span
//     (post-rebalance ownership being an exact partition is covered by the
//     ownership invariant, which runs every step).
//
// The auditor is pure observation: hooks receive values the solver already
// computed (or recomputes read-only), never mutate solver state, and never
// draw randomness — golden digests and trace bytes are bit-identical with
// audits on or off (tests/obs_test.cpp, tests/golden_test.cpp).
//
// Violations are routed by severity: kWarnOnly logs through support/log
// (component "audit", with step and phase in the message), kAbort throws
// dsmcpic::Error, kCountOnly only tallies. All severities tally, and the
// tallies land in run_report.json.

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dsmcpic::obs {

enum class Invariant {
  kParticleBooks = 0,
  kExchangeConservation,
  kChargeBalance,
  kPoissonResidual,
  kOwnership,
  kMailboxDrained,
  kRebalanceCost,
};
inline constexpr int kNumInvariants = 7;

/// Stable snake_case names used in logs and run_report.json.
const char* invariant_name(Invariant inv);

enum class AuditSeverity { kWarnOnly, kAbort, kCountOnly };

const char* audit_severity_name(AuditSeverity s);
/// Parses "warn" / "abort" / "count" (throws on anything else).
AuditSeverity parse_audit_severity(const std::string& name);

struct AuditConfig {
  AuditSeverity severity = AuditSeverity::kWarnOnly;
  /// Relative tolerance for the charge balance (the deposit's serial
  /// scatter order differs from the audit's particle-order resum).
  double charge_rel_tol = 1e-9;
  /// Residual bound applied when the CG did NOT converge (a converged
  /// solve is checked against its own rel_tol).
  double poisson_residual_bound = 1e-3;
  /// The policy's rebalance-cost estimate must lie within this factor of
  /// the measured rebalance span (either direction). Generous by design:
  /// the estimate is an EWMA of *past* rebalances and migration volume
  /// varies between events; the invariant catches estimates that are off
  /// by orders of magnitude (a broken feedback loop), not EWMA lag.
  double rebalance_cost_factor = 16.0;
};

struct InvariantTally {
  std::int64_t checks = 0;
  std::int64_t violations = 0;
};

struct AuditReport {
  std::array<InvariantTally, kNumInvariants> by_invariant{};
  /// First violation in step order, for the log-free post-mortem.
  std::string first_violation;
  int first_violation_step = -1;

  std::int64_t checks() const;
  std::int64_t violations() const;
};

class HealthAuditor {
 public:
  explicit HealthAuditor(AuditConfig cfg = {});

  const AuditConfig& config() const { return cfg_; }
  const AuditReport& report() const { return report_; }

  // ---- step ledger (driver thread, called by CoupledSolver) --------------
  void begin_step(int step, std::int64_t alive);
  void on_injected(std::int64_t n) { injected_ += n; }
  /// Ionization spawns appended to the stores this step.
  void on_spawned(std::int64_t n) { spawned_ += n; }
  /// Particles flagged for removal (move exits, PIC locate losses,
  /// recombined ions) — the expected drop count of the next exchange.
  void on_flagged(std::int64_t n) { flagged_ += n; }
  /// Books of one exchange: store totals before/after, the stats' dropped
  /// count. Checks conservation and that drops == flags, then consumes the
  /// flag pool.
  void check_exchange(const char* phase, std::int64_t total_before,
                      std::int64_t dropped, std::int64_t total_after);
  /// Closes the step: particle ledger + mailbox drain.
  void end_step(std::int64_t alive, std::int64_t undelivered_messages);

  // ---- field-side invariants ---------------------------------------------
  void check_charge(double particle_charge, double deposited_charge);
  void check_poisson(int iterations, double residual, double rel_tol,
                     bool converged);
  /// `owner` maps each coarse cell to a rank; `rank_cells[r]` lists rank
  /// r's cells. Verifies the partition is exact over the `nranks` ACTIVE
  /// ranks; `rank_cells` may be longer (nominal size) as long as every
  /// parked list beyond the active prefix is empty.
  void check_ownership(std::span<const std::int32_t> owner, int nranks,
                       const std::vector<std::vector<std::int32_t>>& rank_cells);
  /// After a rebalance: the policy's learned cost estimate vs the measured
  /// virtual-time span of the event (redecompose + migration + rebuild).
  /// Call only once the policy has at least one prior measurement — the
  /// first event is by definition unestimated.
  void check_rebalance_cost(double estimated, double measured);

 private:
  /// Tallies, logs or throws per cfg_.severity.
  void check(Invariant inv, bool ok, const std::string& detail);

  AuditConfig cfg_;
  AuditReport report_;

  int step_ = -1;
  std::int64_t step_begin_alive_ = 0;
  std::int64_t injected_ = 0;
  std::int64_t spawned_ = 0;
  std::int64_t flagged_ = 0;        // awaiting the next exchange
  std::int64_t dropped_total_ = 0;  // consumed flags, step to date
};

}  // namespace dsmcpic::obs
