#include "obs/run_report.hpp"

#include <fstream>
#include <ostream>

#include "support/error.hpp"
#include "trace/json_writer.hpp"

namespace dsmcpic::obs {

void write_run_report(std::ostream& os, const RunReport& report) {
  trace::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", kRunReportSchema);
  w.kv("bench", report.config.bench);
  w.kv("case", report.config.case_name);

  w.key("config");
  w.begin_object();
  w.kv("ranks", report.config.ranks);
  w.kv("steps", report.config.steps);
  w.kv("machine", report.config.machine);
  w.kv("seed", report.config.seed);
  w.kv("exec_mode", report.config.exec_mode);
  w.kv("exec_threads", report.config.exec_threads);
  w.kv("kernel_threads", report.config.kernel_threads);
  w.kv("sort_every", report.config.sort_every);
  w.kv("strategy", report.config.strategy);
  w.kv("balance", report.config.balance);
  w.kv("audit", report.config.audit_severity);
  w.kv("cost_model", report.config.cost_model);
  w.kv("policy", report.config.policy);
  w.kv("horizon", report.config.horizon);
  w.end_object();

  w.key("ensemble");
  w.begin_object();
  w.kv("kind", report.ensemble.kind);
  w.kv("ranks_min", report.ensemble.ranks_min);
  w.kv("ranks_max", report.ensemble.ranks_max);
  w.kv("active_initial", report.ensemble.active_initial);
  w.kv("active_final", report.ensemble.active_final);
  w.kv("resizes", report.ensemble.resizes);
  w.end_object();

  w.key("virtual_time");
  w.begin_object();
  w.kv("total_seconds", report.total_virtual_time);
  w.key("phases");
  w.begin_array();
  for (const RunReportPhase& p : report.phases) {
    w.begin_object();
    w.kv("phase", p.name);
    w.kv("busy_max", p.busy_max);
    w.kv("busy_min", p.busy_min);
    w.kv("busy_sum", p.busy_sum);
    w.kv("transactions", p.transactions);
    w.kv("bytes", p.bytes);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("steps");
  w.begin_object();
  w.kv("final_particles", report.steps.final_particles);
  w.kv("injected", report.steps.injected);
  w.kv("migrated_dsmc", report.steps.migrated_dsmc);
  w.kv("migrated_pic", report.steps.migrated_pic);
  w.kv("collisions", report.steps.collisions);
  w.kv("ionizations", report.steps.ionizations);
  w.kv("recombinations", report.steps.recombinations);
  w.kv("rebalances", report.steps.rebalances);
  w.end_object();

  w.key("rebalance_decisions");
  w.begin_array();
  for (const RunReportDecision& d : report.rebalance_decisions) {
    w.begin_object();
    w.kv("step", d.step);
    w.kv("lii", d.lii);
    w.kv("imbalance_per_step", d.imbalance_per_step);
    w.kv("projected_imbalance_cost", d.projected_imbalance_cost);
    w.kv("rebalance_cost_estimate", d.rebalance_cost_estimate);
    w.kv("rebalance", d.rebalance);
    w.end_object();
  }
  w.end_array();

  w.key("audit");
  w.begin_object();
  w.kv("enabled", report.audit != nullptr);
  if (report.audit != nullptr) {
    w.kv("checks", report.audit->checks());
    w.kv("violations", report.audit->violations());
    w.key("by_invariant");
    w.begin_object();
    for (int i = 0; i < kNumInvariants; ++i) {
      const auto& t = report.audit->by_invariant[static_cast<std::size_t>(i)];
      w.key(invariant_name(static_cast<Invariant>(i)));
      w.begin_object();
      w.kv("checks", t.checks);
      w.kv("violations", t.violations);
      w.end_object();
    }
    w.end_object();
    w.kv("first_violation", report.audit->first_violation);
    w.kv("first_violation_step", report.audit->first_violation_step);
  }
  w.end_object();

  w.key("host_profile");
  w.begin_object();
  w.kv("enabled", report.profiler != nullptr);
  if (report.profiler != nullptr) {
    w.kv("sample_count", report.profiler->sample_count());
    w.key("kernels");
    w.begin_object();
    for (const auto& [name, s] : report.profiler->stats()) {
      w.key(name);
      w.begin_object();
      w.kv("count", s.count);
      w.kv("total_ms", s.total_ms);
      w.kv("min_ms", s.min_ms);
      w.kv("p50_ms", s.p50_ms);
      w.kv("p95_ms", s.p95_ms);
      w.kv("max_ms", s.max_ms);
      w.end_object();
    }
    w.end_object();
  }
  w.end_object();

  w.end_object();
  w.finish();
}

void write_run_report_file(const std::string& path, const RunReport& report) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  DSMCPIC_CHECK_MSG(os.good(), "cannot open run report file " << path);
  write_run_report(os, report);
  os.flush();
  DSMCPIC_CHECK_MSG(os.good(), "failed writing run report file " << path);
}

}  // namespace dsmcpic::obs
