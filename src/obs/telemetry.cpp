#include "obs/telemetry.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/host_profiler.hpp"
#include "support/error.hpp"
#include "trace/chrome_writer.hpp"  // format_double, escape_json
#include "trace/json_writer.hpp"

namespace dsmcpic::obs {

namespace {

/// Escapes a Prometheus label value (backslash, quote, newline).
std::string escape_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Emits one metric family in Prometheus text format: HELP + TYPE header,
/// then one sample line per labeled value. The `run` label (when set) is
/// prepended to every sample so a fleet aggregator can merge files from
/// several runs without collisions.
class PromFamily {
 public:
  PromFamily(std::ostream& os, const std::string& run_label,
             const std::string& name, const char* type, const char* help)
      : os_(os), name_(name) {
    if (!run_label.empty()) run_ = "run=\"" + escape_label(run_label) + "\"";
    os_ << "# HELP " << name_ << " " << help << "\n";
    os_ << "# TYPE " << name_ << " " << type << "\n";
  }

  void sample(double value, const std::string& extra_labels = "") {
    os_ << name_;
    if (!run_.empty() || !extra_labels.empty()) {
      os_ << "{" << run_;
      if (!run_.empty() && !extra_labels.empty()) os_ << ",";
      os_ << extra_labels << "}";
    }
    os_ << " " << trace::format_double(value) << "\n";
  }

 private:
  std::ostream& os_;
  std::string name_;
  std::string run_;
};

std::string label(const char* key, const std::string& value) {
  return std::string(key) + "=\"" + escape_label(value) + "\"";
}

}  // namespace

// ---- TelemetrySeries -------------------------------------------------------

TelemetrySeries::TelemetrySeries(int capacity) : capacity_(capacity) {
  DSMCPIC_CHECK_MSG(capacity_ >= 2, "telemetry series capacity must be >= 2");
  points_.reserve(static_cast<std::size_t>(capacity_));
}

void TelemetrySeries::push(std::int64_t step, double value) {
  if (step % stride_ != 0) return;
  points_.push_back(Point{step, value});
  if (static_cast<int>(points_.size()) < capacity_) return;
  // Full: keep every other sample (even positions). Retained steps were
  // the multiples of the old stride in ascending order, so the survivors
  // are exactly the multiples of the doubled stride.
  std::size_t keep = 0;
  for (std::size_t i = 0; i < points_.size(); i += 2) points_[keep++] = points_[i];
  points_.resize(keep);
  stride_ *= 2;
}

// ---- TelemetryHub ----------------------------------------------------------

TelemetryHub::TelemetryHub(TelemetryConfig cfg) : cfg_(std::move(cfg)) {
  DSMCPIC_CHECK_MSG(cfg_.series_capacity >= 2,
                    "telemetry series capacity must be >= 2");
  DSMCPIC_CHECK_MSG(cfg_.flight_recorder >= 1,
                    "--flight-recorder must be >= 1");
  DSMCPIC_CHECK_MSG(cfg_.metrics_interval >= 1,
                    "--metrics-interval must be >= 1");
}

void TelemetryHub::push_series(const std::string& name, std::int64_t step,
                               double value) {
  auto it = series_.find(name);
  if (it == series_.end())
    it = series_.emplace(name, TelemetrySeries(cfg_.series_capacity)).first;
  it->second.push(step, value);
}

void TelemetryHub::on_step(const TelemetrySample& s) {
  const std::int64_t step = s.step;
  push_series("particles", step, static_cast<double>(s.particles));
  push_series("particles_h", step, static_cast<double>(s.total_h));
  push_series("particles_hplus", step, static_cast<double>(s.total_hplus));
  push_series("injected", step, static_cast<double>(s.injected));
  push_series("migrated_dsmc", step, static_cast<double>(s.migrated_dsmc));
  push_series("migrated_pic", step, static_cast<double>(s.migrated_pic));
  push_series("collisions", step, static_cast<double>(s.collisions));
  push_series("ionizations", step, static_cast<double>(s.ionizations));
  push_series("recombinations", step, static_cast<double>(s.recombinations));
  push_series("lii", step, s.lii);
  push_series("rebalanced", step, s.rebalanced ? 1.0 : 0.0);
  push_series("poisson_iterations", step,
              static_cast<double>(s.poisson_iterations));
  push_series("active_ranks", step, static_cast<double>(s.active_ranks));
  push_series("virtual_seconds", step, s.virtual_time);
  push_series("exchange_bytes", step, s.exchange_bytes_delta);
  push_series("exchange_messages", step,
              static_cast<double>(s.exchange_messages_delta));
  push_series("pool_acquires", step, static_cast<double>(s.pool_acquires));
  push_series("pool_misses", step, static_cast<double>(s.pool_misses));
  push_series("pool_recycles", step, static_cast<double>(s.pool_recycles));
  push_series("cost_scale_min", step, s.cost_scale_min);
  push_series("cost_scale_max", step, s.cost_scale_max);
  push_series("cost_scale_mean", step, s.cost_scale_mean);
  push_series("audit_checks", step, static_cast<double>(s.audit_checks));
  push_series("audit_violations", step,
              static_cast<double>(s.audit_violations));
  for (const TelemetryPhase& p : s.phases)
    push_series("phase_busy_max/" + p.name, step, p.busy_max);
  if (prof_) push_series("host_ms", step, prof_->total_ms());

  injected_total_ += s.injected;
  migrated_dsmc_total_ += s.migrated_dsmc;
  migrated_pic_total_ += s.migrated_pic;
  collisions_total_ += s.collisions;
  ionizations_total_ += s.ionizations;
  recombinations_total_ += s.recombinations;
  exited_total_ += s.exited_dsmc + s.exited_pic;
  pic_lost_total_ += s.pic_lost;
  rebalances_total_ += s.rebalanced ? 1 : 0;
  exchange_bytes_total_ += s.exchange_bytes_delta;
  exchange_messages_total_ += s.exchange_messages_delta;

  flight_.push_back(s);
  while (static_cast<int>(flight_.size()) > cfg_.flight_recorder)
    flight_.pop_front();

  ++samples_seen_;
  if (samples_seen_ % cfg_.metrics_interval == 0) publish();
}

void TelemetryHub::publish() {
  if (!cfg_.metrics_prom_path.empty()) {
    std::ostringstream os;
    write_prometheus(os);
    atomic_write_file(cfg_.metrics_prom_path, os.str());
  }
  if (!cfg_.metrics_json_path.empty()) {
    std::ostringstream os;
    write_json_snapshot(os);
    atomic_write_file(cfg_.metrics_json_path, os.str());
  }
  ++publishes_;
}

void TelemetryHub::write_prometheus(std::ostream& os) const {
  const TelemetrySample* last = flight_.empty() ? nullptr : &flight_.back();
  const std::string& run = cfg_.run_label;

  {
    PromFamily f(os, run, "dsmcpic_step", "gauge", "current DSMC step");
    f.sample(last ? static_cast<double>(last->step) : 0.0);
  }
  {
    PromFamily f(os, run, "dsmcpic_supersteps_total", "counter",
                 "runtime supersteps executed");
    f.sample(last ? static_cast<double>(last->supersteps) : 0.0);
  }
  {
    PromFamily f(os, run, "dsmcpic_virtual_seconds_total", "counter",
                 "end-to-end virtual time (cost-model seconds)");
    f.sample(last ? last->virtual_time : 0.0);
  }
  {
    PromFamily f(os, run, "dsmcpic_active_ranks", "gauge",
                 "virtual ranks currently active");
    f.sample(last ? static_cast<double>(last->active_ranks) : 0.0);
  }
  {
    PromFamily f(os, run, "dsmcpic_particles", "gauge",
                 "particles alive across all ranks");
    f.sample(last ? static_cast<double>(last->particles) : 0.0);
  }
  {
    PromFamily f(os, run, "dsmcpic_particles_species", "gauge",
                 "particles alive by species");
    f.sample(last ? static_cast<double>(last->total_h) : 0.0,
             label("species", "H"));
    f.sample(last ? static_cast<double>(last->total_hplus) : 0.0,
             label("species", "Hplus"));
  }
  {
    PromFamily f(os, run, "dsmcpic_lii", "gauge",
                 "load imbalance indicator (last step)");
    f.sample(last ? last->lii : 0.0);
  }
  {
    PromFamily f(os, run, "dsmcpic_poisson_iterations", "gauge",
                 "CG iterations of the last Poisson solve");
    f.sample(last ? static_cast<double>(last->poisson_iterations) : 0.0);
  }
  {
    PromFamily f(os, run, "dsmcpic_injected_total", "counter",
                 "particles injected");
    f.sample(static_cast<double>(injected_total_));
  }
  {
    PromFamily f(os, run, "dsmcpic_migrated_total", "counter",
                 "particles migrated between ranks, by exchange path");
    f.sample(static_cast<double>(migrated_dsmc_total_),
             label("path", "dsmc"));
    f.sample(static_cast<double>(migrated_pic_total_), label("path", "pic"));
  }
  {
    PromFamily f(os, run, "dsmcpic_collisions_total", "counter",
                 "DSMC collisions");
    f.sample(static_cast<double>(collisions_total_));
  }
  {
    PromFamily f(os, run, "dsmcpic_ionizations_total", "counter",
                 "ionization events");
    f.sample(static_cast<double>(ionizations_total_));
  }
  {
    PromFamily f(os, run, "dsmcpic_recombinations_total", "counter",
                 "recombination events");
    f.sample(static_cast<double>(recombinations_total_));
  }
  {
    PromFamily f(os, run, "dsmcpic_exited_total", "counter",
                 "particles removed at boundaries");
    f.sample(static_cast<double>(exited_total_));
  }
  {
    PromFamily f(os, run, "dsmcpic_pic_lost_total", "counter",
                 "charged particles the fine locate lost");
    f.sample(static_cast<double>(pic_lost_total_));
  }
  {
    PromFamily f(os, run, "dsmcpic_rebalances_total", "counter",
                 "rebalance events");
    f.sample(static_cast<double>(rebalances_total_));
  }
  {
    PromFamily f(os, run, "dsmcpic_exchange_bytes_total", "counter",
                 "scaled payload bytes migrated");
    f.sample(exchange_bytes_total_);
  }
  {
    PromFamily f(os, run, "dsmcpic_exchange_messages_total", "counter",
                 "point-to-point messages routed by the exchanges");
    f.sample(static_cast<double>(exchange_messages_total_));
  }
  {
    PromFamily f(os, run, "dsmcpic_pool_acquires_total", "counter",
                 "payload-pool buffers handed out");
    f.sample(last ? static_cast<double>(last->pool_acquires) : 0.0);
  }
  {
    PromFamily f(os, run, "dsmcpic_pool_misses_total", "counter",
                 "payload-pool acquires that allocated fresh memory");
    f.sample(last ? static_cast<double>(last->pool_misses) : 0.0);
  }
  {
    PromFamily f(os, run, "dsmcpic_pool_recycles_total", "counter",
                 "delivered payloads returned to a pool");
    f.sample(last ? static_cast<double>(last->pool_recycles) : 0.0);
  }
  {
    PromFamily f(os, run, "dsmcpic_audit_checks_total", "counter",
                 "health-audit checks run");
    f.sample(last ? static_cast<double>(last->audit_checks) : 0.0);
  }
  {
    PromFamily f(os, run, "dsmcpic_audit_violations_total", "counter",
                 "health-audit violations tallied");
    f.sample(last ? static_cast<double>(last->audit_violations) : 0.0);
  }
  {
    PromFamily f(os, run, "dsmcpic_cost_scale", "gauge",
                 "cost-model per-rank correction factors over active ranks");
    f.sample(last ? last->cost_scale_min : 1.0, label("stat", "min"));
    f.sample(last ? last->cost_scale_max : 1.0, label("stat", "max"));
    f.sample(last ? last->cost_scale_mean : 1.0, label("stat", "mean"));
  }
  if (last && !last->phases.empty()) {
    PromFamily busy(os, run, "dsmcpic_phase_busy_seconds", "counter",
                    "cumulative busy_max virtual seconds per runtime phase");
    for (const TelemetryPhase& p : last->phases)
      busy.sample(p.busy_max, label("phase", p.name));
    PromFamily bytes(os, run, "dsmcpic_phase_bytes_total", "counter",
                     "cumulative scaled payload bytes per runtime phase");
    for (const TelemetryPhase& p : last->phases)
      bytes.sample(p.bytes, label("phase", p.name));
    PromFamily msgs(os, run, "dsmcpic_phase_messages_total", "counter",
                    "cumulative messages routed per runtime phase");
    for (const TelemetryPhase& p : last->phases)
      msgs.sample(static_cast<double>(p.transactions),
                  label("phase", p.name));
  }
  if (prof_) {
    PromFamily f(os, run, "dsmcpic_host_kernel_ms_total", "counter",
                 "host wall-clock milliseconds per kernel");
    for (const auto& [name, st] : prof_->stats())
      f.sample(st.total_ms, label("kernel", name));
  }
  {
    PromFamily f(os, run, "dsmcpic_telemetry_samples_total", "counter",
                 "telemetry samples ingested");
    f.sample(static_cast<double>(samples_seen_));
  }
  {
    PromFamily f(os, run, "dsmcpic_telemetry_publishes_total", "counter",
                 "exposition publications (including this one)");
    f.sample(static_cast<double>(publishes_ + 1));
  }
}

void TelemetryHub::write_json_snapshot(std::ostream& os) const {
  const TelemetrySample* last = flight_.empty() ? nullptr : &flight_.back();
  trace::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", kMetricsSchema);
  w.kv("run", cfg_.run_label);
  w.kv("samples_seen", samples_seen_);
  w.kv("metrics_interval", cfg_.metrics_interval);
  w.kv("flight_recorder", cfg_.flight_recorder);

  w.key("gauges");
  w.begin_object();
  w.kv("step", last ? last->step : 0);
  w.kv("supersteps", last ? last->supersteps : 0);
  w.kv("virtual_seconds", last ? last->virtual_time : 0.0);
  w.kv("active_ranks", last ? last->active_ranks : 0);
  w.kv("particles", last ? last->particles : 0);
  w.kv("lii", last ? last->lii : 0.0);
  w.end_object();

  w.key("counters");
  w.begin_object();
  w.kv("injected", injected_total_);
  w.kv("migrated_dsmc", migrated_dsmc_total_);
  w.kv("migrated_pic", migrated_pic_total_);
  w.kv("collisions", collisions_total_);
  w.kv("ionizations", ionizations_total_);
  w.kv("recombinations", recombinations_total_);
  w.kv("exited", exited_total_);
  w.kv("pic_lost", pic_lost_total_);
  w.kv("rebalances", rebalances_total_);
  w.kv("exchange_bytes", exchange_bytes_total_);
  w.kv("exchange_messages", exchange_messages_total_);
  w.end_object();

  w.key("series");
  w.begin_array();
  for (const auto& [name, s] : series_) {
    w.begin_object();
    w.kv("name", name);
    w.kv("stride", s.stride());
    w.kv("capacity", s.capacity());
    w.key("points");
    w.begin_array();
    for (const TelemetrySeries::Point& p : s.points()) {
      w.begin_object();
      w.kv("step", p.step);
      w.kv("value", p.value);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.end_object();
  w.finish();
  os << "\n";
}

void TelemetryHub::write_postmortem(std::ostream& os,
                                    const std::string& reason) const {
  // Only the deterministic slice of each record: no host wall-clock, no
  // payload-pool internals — the bytes must be identical across execution
  // backends (tests/telemetry_test.cpp).
  trace::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", kPostmortemSchema);
  w.kv("reason", reason);
  w.kv("run", cfg_.run_label);
  w.kv("flight_recorder", cfg_.flight_recorder);
  w.kv("samples_seen", samples_seen_);
  w.key("records");
  w.begin_array();
  for (const TelemetrySample& s : flight_) {
    w.begin_object();
    w.kv("step", s.step);
    w.kv("supersteps", s.supersteps);
    w.kv("virtual_seconds", s.virtual_time);
    w.kv("active_ranks", s.active_ranks);
    w.kv("particles", s.particles);
    w.kv("particles_h", s.total_h);
    w.kv("particles_hplus", s.total_hplus);
    w.kv("injected", s.injected);
    w.kv("migrated_dsmc", s.migrated_dsmc);
    w.kv("migrated_pic", s.migrated_pic);
    w.kv("collisions", s.collisions);
    w.kv("ionizations", s.ionizations);
    w.kv("recombinations", s.recombinations);
    w.kv("exited_dsmc", s.exited_dsmc);
    w.kv("exited_pic", s.exited_pic);
    w.kv("pic_lost", s.pic_lost);
    w.kv("lii", s.lii);
    w.kv("rebalanced", s.rebalanced);
    w.kv("poisson_iterations", s.poisson_iterations);
    w.key("particles_per_rank");
    w.begin_array();
    for (std::int64_t n : s.particles_per_rank) w.value(n);
    w.end_array();
    w.key("phases");
    w.begin_array();
    for (const TelemetryPhase& p : s.phases) {
      w.begin_object();
      w.kv("phase", p.name);
      w.kv("busy_max", p.busy_max);
      w.kv("busy_min", p.busy_min);
      w.kv("busy_sum", p.busy_sum);
      w.kv("transactions", p.transactions);
      w.kv("bytes", p.bytes);
      w.end_object();
    }
    w.end_array();
    w.kv("exchange_bytes", s.exchange_bytes_delta);
    w.kv("exchange_messages", s.exchange_messages_delta);
    w.key("cost_scale");
    w.begin_object();
    w.kv("min", s.cost_scale_min);
    w.kv("max", s.cost_scale_max);
    w.kv("mean", s.cost_scale_mean);
    w.end_object();
    w.key("decisions");
    w.begin_array();
    for (const TelemetryDecision& d : s.decisions) {
      w.begin_object();
      w.kv("step", d.step);
      w.kv("lii", d.lii);
      w.kv("imbalance_per_step", d.imbalance_per_step);
      w.kv("projected_imbalance_cost", d.projected_imbalance_cost);
      w.kv("rebalance_cost_estimate", d.rebalance_cost_estimate);
      w.kv("rebalance", d.rebalance);
      w.end_object();
    }
    w.end_array();
    w.key("audit");
    w.begin_object();
    w.kv("checks", s.audit_checks);
    w.kv("violations", s.audit_violations);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.finish();
  os << "\n";
}

void TelemetryHub::dump_postmortem(const std::string& reason) {
  if (cfg_.postmortem_path.empty() || postmortem_written_) return;
  std::ostringstream os;
  write_postmortem(os, reason);
  atomic_write_file(cfg_.postmortem_path, os.str());
  postmortem_written_ = true;
}

void atomic_write_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    DSMCPIC_CHECK_MSG(os.good(), "cannot open " << tmp);
    os << content;
    os.flush();
    DSMCPIC_CHECK_MSG(os.good(), "failed writing " << tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  DSMCPIC_CHECK_MSG(!ec, "cannot rename " << tmp << " -> " << path << ": "
                                          << ec.message());
}

}  // namespace dsmcpic::obs
