// Example: the load-balancing toolkit used standalone — no particle solver,
// just the substrate libraries. Demonstrates:
//   1. generating the nozzle mesh and its dual graph,
//   2. k-way partitioning with and without vertex weights,
//   3. the Kuhn-Munkres remapping that keeps the new decomposition aligned
//      with the old owners (the paper's Fig. 6 optimization).
//
// Useful if you want to embed the balancer in a different solver.

#include <cstdio>

#include "balance/rebalancer.hpp"
#include "mesh/nozzle.hpp"
#include "partition/partitioner.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace dsmcpic;

int main(int argc, char** argv) {
  Cli cli("Standalone demo of the partition + KM remapping toolkit");
  const auto* parts = cli.add_int("parts", 8, "number of parts/ranks");
  if (!cli.parse(argc, argv)) return 0;
  const int k = static_cast<int>(*parts);

  // 1. Mesh and dual graph.
  mesh::NozzleSpec spec;
  spec.radial_divisions = 6;
  spec.axial_divisions = 18;
  const mesh::TetMesh grid = mesh::make_cylinder_nozzle(spec);
  partition::Graph dual;
  grid.dual_graph(dual.xadj, dual.adjncy);
  std::printf("nozzle mesh: %d tets, dual graph with %lld edges\n",
              grid.num_tets(), static_cast<long long>(dual.num_edges() / 2));

  // 2a. Unweighted partition (the solver's first decomposition).
  const auto unweighted = partition::part_graph_kway(dual, k);
  std::printf("unweighted %d-way: cut=%lld imbalance=%.3f\n", k,
              static_cast<long long>(unweighted.cut), unweighted.imbalance);

  // 2b. Weighted partition: synthetic inlet-heavy particle distribution
  // (the paper's wlm with all particles piled near z=0).
  partition::Graph weighted = dual;
  weighted.vwgt.resize(grid.num_tets());
  for (std::int32_t c = 0; c < grid.num_tets(); ++c) {
    const double z = grid.centroid(c).z / spec.length;
    weighted.vwgt[c] = 1 + static_cast<std::int64_t>(400.0 *
                                                     std::exp(-8.0 * z));
  }
  const auto balanced = partition::part_graph_kway(weighted, k);
  std::printf("weighted  %d-way: cut=%lld imbalance=%.3f (by wlm weight)\n", k,
              static_cast<long long>(balanced.cut), balanced.imbalance);

  // 3. KM remapping: relabel the weighted parts so that they overlap the
  // unweighted owners as much as possible -> minimum migration.
  std::vector<double> keep(grid.num_tets());
  for (std::int32_t c = 0; c < grid.num_tets(); ++c)
    keep[c] = static_cast<double>(weighted.vwgt[c]);
  std::int64_t km_ops = 0;
  const auto remapped =
      balance::km_remap(unweighted.part, balanced.part, keep, k, &km_ops);

  auto moved_weight = [&](std::span<const std::int32_t> owner) {
    double moved = 0.0, total = 0.0;
    for (std::int32_t c = 0; c < grid.num_tets(); ++c) {
      total += keep[c];
      if (owner[c] != unweighted.part[c]) moved += keep[c];
    }
    return moved / total;
  };

  Table t("Migration cost of adopting the weighted decomposition");
  t.header({"mapping", "weight that must migrate"});
  t.row({"raw partitioner labels", Table::pct(moved_weight(balanced.part))});
  t.row({"after KM remapping", Table::pct(moved_weight(remapped))});
  t.print();
  std::printf("KM inner operations: %lld\n", static_cast<long long>(km_ops));
  return 0;
}
