// Example: a self-contained strong-scaling study using the public API —
// sweep virtual rank counts for both communication strategies on any of the
// paper's datasets and machine profiles, and print speedups. This is the
// "hello world" of the parallel side of the library (the bench/ harness
// does the full paper tables; this shows how to build such a study).
//
//   ./scaling_study --dataset 2 --ranks 8,16,32,64 --machine tianhe3

#include <cstdio>
#include <sstream>

#include "core/datasets.hpp"
#include "core/solver.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace dsmcpic;

int main(int argc, char** argv) {
  Cli cli("Strong-scaling study on the coupled DSMC/PIC solver");
  const auto* dataset = cli.add_int("dataset", 2, "paper dataset id (1..6)");
  const auto* ranks_csv =
      cli.add_string("ranks", "8,16,32,64", "rank counts to sweep");
  const auto* steps = cli.add_int("steps", 30, "DSMC steps per run");
  const auto* machine =
      cli.add_string("machine", "tianhe2", "tianhe2 | bscc | tianhe3");
  const auto* exec_mode = cli.add_string(
      "exec-mode", "seq", "superstep execution: seq | threaded");
  const auto* threads =
      cli.add_int("threads", 0, "worker lanes for threaded (0 = all cores)");
  if (!cli.parse(argc, argv)) return 0;

  std::vector<int> ranks;
  {
    std::stringstream ss(*ranks_csv);
    std::string item;
    while (std::getline(ss, item, ',')) ranks.push_back(std::stoi(item));
  }

  const core::Dataset ds = core::make_dataset(static_cast<int>(*dataset));
  par::MachineProfile profile = par::MachineProfile::tianhe2();
  if (*machine == "bscc") profile = par::MachineProfile::bscc();
  if (*machine == "tianhe3") profile = par::MachineProfile::tianhe3();

  Table t("Strong scaling of " + ds.name + " on " + *machine +
          " (virtual seconds)");
  std::vector<std::string> header{"strategy"};
  for (const int n : ranks) header.push_back(std::to_string(n));
  header.push_back("speedup@max");
  t.header(header);

  for (const auto strategy : {exchange::Strategy::kDistributed,
                              exchange::Strategy::kCentralized}) {
    std::vector<double> times;
    for (const int n : ranks) {
      core::ParallelConfig par;
      par.nranks = n;
      par.profile = profile;
      par.strategy = strategy;
      par.balance.period = 10;
      par.particle_scale = ds.paper_particle_scale;
      par.grid_scale = ds.paper_grid_scale;
      par.exec_mode = par::parse_exec_mode(*exec_mode);
      par.exec_threads = static_cast<int>(*threads);
      core::CoupledSolver solver(ds.config, par);
      solver.run(static_cast<int>(*steps));
      times.push_back(solver.runtime().total_time());
      std::fprintf(stderr, "  %s %d ranks: %.1f virtual s\n",
                   exchange::strategy_name(strategy), n, times.back());
    }
    std::vector<std::string> row{exchange::strategy_name(strategy)};
    for (const double v : times) row.push_back(Table::num(v, 1));
    row.push_back(Table::num(times.front() / times.back(), 2) + "x");
    t.row(row);
  }
  t.print();
  return 0;
}
