// Quickstart: run the coupled DSMC/PIC solver on a small plasma-plume case
// with 4 virtual ranks and the dynamic load balancer enabled, printing
// per-step diagnostics and the final phase breakdown.
//
//   ./quickstart [--ranks 4] [--steps 20] [--strategy dc|cc] [--no-balance]

#include <cstdio>
#include <iostream>

#include "core/datasets.hpp"
#include "core/solver.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace dsmcpic;

int main(int argc, char** argv) {
  Cli cli("Quickstart for the coupled DSMC/PIC solver");
  const auto* ranks = cli.add_int("ranks", 4, "number of virtual ranks");
  const auto* steps = cli.add_int("steps", 20, "DSMC steps to run");
  const auto* dataset = cli.add_int("dataset", 1, "paper dataset id (1..6)");
  const auto* period = cli.add_int("period", 5, "load-balance period T");
  const auto* strategy =
      cli.add_string("strategy", "dc", "communication strategy: dc or cc");
  const auto* no_balance =
      cli.add_flag("no-balance", false, "disable the dynamic load balancer");
  if (!cli.parse(argc, argv)) return 0;

  core::Dataset ds = core::make_dataset(static_cast<int>(*dataset));
  core::ParallelConfig par;
  par.nranks = static_cast<int>(*ranks);
  par.strategy = (*strategy == "cc") ? exchange::Strategy::kCentralized
                                     : exchange::Strategy::kDistributed;
  par.balance.enabled = !*no_balance;
  par.balance.period = static_cast<int>(*period);
  par.particle_scale = ds.paper_particle_scale;
  par.grid_scale = ds.paper_grid_scale;

  std::printf("Coupled DSMC/PIC quickstart: %s, %d ranks, %s strategy, LB %s\n",
              ds.name.c_str(), par.nranks,
              exchange::strategy_name(par.strategy),
              par.balance.enabled ? "on" : "off");

  core::CoupledSolver solver(ds.config, par);
  std::printf("grid: %d coarse cells, %d fine cells, %d fine nodes\n",
              solver.coarse_grid().num_tets(),
              solver.fine_grid().fine().num_tets(),
              solver.fine_grid().fine().num_nodes());

  for (int s = 0; s < *steps; ++s) {
    const core::StepDiagnostics d = solver.step();
    std::printf(
        "step %3d  H=%8lld  H+=%6lld  inj=%6lld  migrated=%6lld  coll=%6lld  "
        "poisson_it=%3d  lii=%6.2f%s\n",
        d.dsmc_step, static_cast<long long>(d.total_h),
        static_cast<long long>(d.total_hplus),
        static_cast<long long>(d.injected),
        static_cast<long long>(d.migrated_dsmc + d.migrated_pic),
        static_cast<long long>(d.collisions), d.poisson_iterations, d.lii,
        d.rebalanced ? "  [rebalanced]" : "");
    if ((s + 1) % 10 == 0)
      std::printf("          cumulative virtual time: %.1f s\n",
                  solver.runtime().total_time());
  }

  const core::RunSummary sum = solver.summary();
  Table t("Phase breakdown (virtual seconds, max over ranks)");
  t.header({"phase", "busy_max", "busy_min", "transactions"});
  for (std::size_t i = 0; i < sum.phase_names.size(); ++i) {
    const auto& st = sum.phase_stats[i];
    t.row({sum.phase_names[i], Table::num(st.busy_max, 3),
           Table::num(st.busy_min, 3), std::to_string(st.transactions)});
  }
  t.print();
  std::printf("total virtual time: %.3f s, final particles: %lld\n",
              sum.total_time, static_cast<long long>(sum.final_particles));
  return 0;
}
