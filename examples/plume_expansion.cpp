// Physics-focused example: simulate the hydrogen plasma plume expanding
// through the nozzle (Dataset 1, the paper's validation case) and write the
// sampled flow fields out for inspection:
//   * axis profiles of H density, H+ density, temperature and potential
//     printed as tables,
//   * legacy-VTK files of the coarse-grid H density and the fine-grid
//     electric potential (viewable in ParaView).
//
//   ./plume_expansion [--steps 80] [--ranks 4] [--vtk-prefix plume]

#include <cstdio>
#include <fstream>

#include "core/datasets.hpp"
#include "core/solver.hpp"
#include "dsmc/sampling.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace dsmcpic;

int main(int argc, char** argv) {
  Cli cli("Plasma plume expansion with sampled flow fields");
  const auto* steps = cli.add_int("steps", 80, "DSMC steps");
  const auto* ranks = cli.add_int("ranks", 4, "virtual ranks");
  const auto* points = cli.add_int("points", 16, "axis sample points");
  const auto* vtk = cli.add_string("vtk-prefix", "plume",
                                   "output prefix for VTK files ('' = none)");
  if (!cli.parse(argc, argv)) return 0;

  core::Dataset ds = core::make_dataset(1);
  core::ParallelConfig par;
  par.nranks = static_cast<int>(*ranks);
  par.balance.period = 10;

  core::CoupledSolver solver(ds.config, par);
  std::printf("simulating %lld DSMC steps of %s (%d ranks)...\n",
              static_cast<long long>(*steps), ds.name.c_str(), par.nranks);
  solver.run(static_cast<int>(*steps));

  const auto& grid = solver.coarse_grid();
  const double L = ds.config.nozzle.length;
  const auto density_h = solver.sampler().number_density(dsmc::kSpeciesH);
  const auto density_hp = solver.sampler().number_density(dsmc::kSpeciesHPlus);
  const auto temperature = solver.sampler().temperature(dsmc::kSpeciesH);

  const int np = static_cast<int>(*points);
  const auto prof_h = dsmc::axis_profile(grid, density_h, L, np);
  const auto prof_hp = dsmc::axis_profile(grid, density_hp, L, np);
  const auto prof_t = dsmc::axis_profile(grid, temperature, L, np);

  Table t("Central-axis flow profiles (time-averaged)");
  t.header({"z [mm]", "n_H [1/m^3]", "n_H+ [1/m^3]", "T_H [K]"});
  for (int k = 0; k < np; ++k) {
    const double z = L * (k + 0.5) / np * 1e3;
    t.row({Table::num(z, 2), Table::sci(prof_h[k]), Table::sci(prof_hp[k]),
           Table::num(prof_t[k], 0)});
  }
  t.print();

  const auto d = solver.history().back();
  std::printf(
      "\nfinal population: %lld H, %lld H+  (collisions %lld, ionizations "
      "%lld, recombinations %lld in the last step)\n",
      static_cast<long long>(d.total_h), static_cast<long long>(d.total_hplus),
      static_cast<long long>(d.collisions),
      static_cast<long long>(d.ionizations),
      static_cast<long long>(d.recombinations));

  if (!vtk->empty()) {
    const std::string density_file = *vtk + "_density.vtk";
    grid.write_vtk(density_file, density_h, "n_H");
    // Fine-grid potential: convert the nodal field to per-cell averages.
    const auto& fine = solver.fine_grid().fine();
    const auto& phi = solver.potential();
    std::vector<double> phi_cell(fine.num_tets(), 0.0);
    for (std::int32_t c = 0; c < fine.num_tets(); ++c) {
      for (const auto n : fine.tet(c)) phi_cell[c] += 0.25 * phi[n];
    }
    const std::string phi_file = *vtk + "_potential.vtk";
    fine.write_vtk(phi_file, phi_cell, "phi");
    std::printf("wrote %s and %s\n", density_file.c_str(), phi_file.c_str());
  }
  return 0;
}
