// Example: long-running simulation with checkpoint/restart and the balance
// auto-tuner.
//   1. Auto-tune (T, Threshold) with short pilot runs (the paper's
//      "sampling script" approach).
//   2. Run the first half of the simulation and write a checkpoint.
//   3. Restore into a fresh solver and finish — the result is identical to
//      an uninterrupted run.

#include <cstdio>
#include <filesystem>

#include "core/autotune.hpp"
#include "core/datasets.hpp"
#include "core/solver.hpp"
#include "core/timeline.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace dsmcpic;

int main(int argc, char** argv) {
  Cli cli("Checkpoint/restart + auto-tuning demo");
  const auto* steps = cli.add_int("steps", 40, "total DSMC steps");
  const auto* ranks = cli.add_int("ranks", 4, "virtual ranks");
  const auto* ckpt = cli.add_string("checkpoint", "demo.ckpt",
                                    "checkpoint file path");
  if (!cli.parse(argc, argv)) return 0;

  const core::Dataset ds = core::make_dataset(1);
  core::ParallelConfig par;
  par.nranks = static_cast<int>(*ranks);

  // 1. Auto-tune the balancer on short pilots.
  core::AutotuneOptions topt;
  topt.pilot_steps = 10;
  const core::AutotuneResult tuned =
      core::autotune_balance(ds.config, par, topt);
  Table t("Auto-tuning pilots (virtual seconds)");
  t.header({"T", "Threshold", "pilot time", "rebalances"});
  for (const auto& trial : tuned.trials)
    t.row({std::to_string(trial.period), Table::num(trial.threshold, 1),
           Table::num(trial.total_time, 2), std::to_string(trial.rebalances)});
  t.print();
  std::printf("selected T=%d Threshold=%.1f\n\n", tuned.best_period,
              tuned.best_threshold);
  par.balance.period = tuned.best_period;
  par.balance.threshold = tuned.best_threshold;

  // 2. First half + checkpoint (with a phase timeline for inspection).
  const int half = static_cast<int>(*steps) / 2;
  {
    core::CoupledSolver solver(ds.config, par);
    core::PhaseTimeline timeline(solver);
    for (int s = 0; s < half; ++s) {
      solver.step();
      timeline.record_step();
    }
    solver.save_checkpoint(*ckpt);
    timeline.write_csv("demo_timeline.csv");
    std::printf("checkpointed at step %d -> %s (%lld particles); timeline in "
                "demo_timeline.csv\n",
                solver.current_step(), ckpt->c_str(),
                static_cast<long long>(solver.total_particles()));
  }

  // 3. Restore into a fresh solver and finish the run.
  core::CoupledSolver resumed(ds.config, par);
  resumed.restore_checkpoint(*ckpt);
  resumed.run(static_cast<int>(*steps) - half);

  // Reference: the same run without interruption.
  core::CoupledSolver reference(ds.config, par);
  reference.run(static_cast<int>(*steps));

  std::printf(
      "resumed run:   %lld particles, %.3f virtual s\n"
      "uninterrupted: %lld particles, %.3f virtual s\n"
      "bit-identical: %s\n",
      static_cast<long long>(resumed.total_particles()),
      resumed.runtime().total_time(),
      static_cast<long long>(reference.total_particles()),
      reference.runtime().total_time(),
      (resumed.total_particles() == reference.total_particles() &&
       resumed.runtime().total_time() == reference.runtime().total_time())
          ? "YES"
          : "NO");
  std::filesystem::remove(*ckpt);
  return 0;
}
